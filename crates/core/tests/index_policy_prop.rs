//! Cross-policy equivalence: the flat, AVL and radix cracker indexes
//! must be observationally identical through every engine.
//!
//! `IndexPolicy` promises more than "same answers": for any operation
//! sequence, all three representations must produce the *same crack
//! boundaries* (key and position, entry for entry), the *same piece
//! metadata* (ScrackMon counters, progressive-job presence), the *same
//! physical column order*, and *bit-identical [`Stats`]*. That contract
//! is what lets the index policy be a pure wall-clock knob — exactly the
//! guarantee PR 2 pinned for `KernelPolicy` at the kernel layer, lifted
//! here to the index layer across every engine in the factory.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_core::{
    build_engine, CrackConfig, CrackedColumn, EngineKind, IndexPolicy, Oracle,
};
use scrack_types::QueryRange;

/// A fixed pseudo-random column: keys `0..n` shuffled.
fn column(n: u64, salt: u64) -> Vec<u64> {
    let mut data: Vec<u64> = (0..n).collect();
    let mut state = 0x853C_49E6_748F_EA9Bu64 ^ salt;
    for i in (1..data.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.swap(i, (state % (i as u64 + 1)) as usize);
    }
    data
}

/// Everything observable about a cracked column after a run.
#[derive(Debug, PartialEq)]
struct Observation {
    cracks: Vec<(u64, usize)>,
    piece_metas: Vec<(u32, bool)>, // (crack_count, has_job) per piece
    data: Vec<u64>,
    stats: scrack_types::Stats,
}

fn observe(col: &CrackedColumn<u64>) -> Observation {
    Observation {
        cracks: col.index().iter_cracks().map(|(k, p, _)| (k, p)).collect(),
        piece_metas: col
            .index()
            .iter_pieces()
            .map(|p| {
                let m = col.index().piece_meta(&p);
                (m.crack_count, m.job.is_some())
            })
            .collect(),
        data: col.data().to_vec(),
        stats: col.stats(),
    }
}

/// One mixed operation against a cracked column.
#[derive(Clone, Debug)]
enum Op {
    CrackOn(u64),
    Ddc(u64),
    Ddr(u64),
    Dd1c(u64),
    Dd1r(u64),
    SelectOriginal(u64, u64),
    Mdd1r(u64, u64),
    Pmdd1r(u64, u64),
    Selective(u64, u64),
    Ddm(u64),
    Dd1m(u64),
    Mdd1m(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let k = 0u64..4000;
    let w = 1u64..400;
    prop_oneof![
        k.clone().prop_map(Op::CrackOn),
        k.clone().prop_map(Op::Ddc),
        k.clone().prop_map(Op::Ddr),
        k.clone().prop_map(Op::Dd1c),
        k.clone().prop_map(Op::Dd1r),
        (k.clone(), w.clone()).prop_map(|(a, w)| Op::SelectOriginal(a, w)),
        (k.clone(), w.clone()).prop_map(|(a, w)| Op::Mdd1r(a, w)),
        (k.clone(), w.clone()).prop_map(|(a, w)| Op::Pmdd1r(a, w)),
        (k.clone(), w.clone()).prop_map(|(a, w)| Op::Selective(a, w)),
        k.clone().prop_map(Op::Ddm),
        k.clone().prop_map(Op::Dd1m),
        (k, w).prop_map(|(a, w)| Op::Mdd1m(a, w)),
    ]
}

/// Replays `ops` on a fresh column under `policy` with a fixed RNG seed.
fn replay(ops: &[Op], policy: IndexPolicy, seed: u64) -> Observation {
    let config = CrackConfig::default()
        .with_crack_size(64)
        .with_progressive_threshold(512)
        .with_index(policy);
    let mut col = CrackedColumn::new(column(4000, 11), config);
    let mut rng = SmallRng::seed_from_u64(seed);
    for op in ops {
        match *op {
            Op::CrackOn(k) => {
                col.crack_on(k);
            }
            Op::Ddc(k) => {
                col.ddc_crack(k);
            }
            Op::Ddr(k) => {
                col.ddr_crack(k, &mut rng);
            }
            Op::Dd1c(k) => {
                col.dd1c_crack(k);
            }
            Op::Dd1r(k) => {
                col.dd1r_crack(k, &mut rng);
            }
            Op::SelectOriginal(a, w) => {
                col.select_original(QueryRange::new(a, a + w));
            }
            Op::Mdd1r(a, w) => {
                col.mdd1r_select(QueryRange::new(a, a + w), &mut rng);
            }
            Op::Pmdd1r(a, w) => {
                col.pmdd1r_select(QueryRange::new(a, a + w), 10.0, &mut rng);
            }
            Op::Ddm(k) => {
                col.ddm_crack(k);
            }
            Op::Dd1m(k) => {
                col.dd1m_crack(k);
            }
            Op::Mdd1m(a, w) => {
                col.mdd1m_select(QueryRange::new(a, a + w));
            }
            Op::Selective(a, w) => {
                col.selective_select(QueryRange::new(a, a + w), &mut rng, |_, meta| {
                    // The ScrackMon shape: stochastic every third crack,
                    // so the run exercises the piece counters too.
                    if meta.crack_count >= 2 {
                        meta.crack_count = 0;
                        true
                    } else {
                        meta.crack_count += 1;
                        false
                    }
                });
            }
        }
    }
    col.check_integrity().unwrap();
    observe(&col)
}

proptest! {
    /// Every index policy is bit-identical through arbitrary mixed
    /// operation sequences over the full `CrackedColumn` surface —
    /// including the deterministic midpoint ops (DDM/DD1M/MDD1M).
    #[test]
    fn index_policy_observations_are_bit_identical(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        seed in 0u64..1_000,
    ) {
        let reference = replay(&ops, IndexPolicy::ALL[0], seed);
        for &policy in &IndexPolicy::ALL[1..] {
            let other = replay(&ops, policy, seed);
            prop_assert_eq!(
                &reference.cracks, &other.cracks,
                "{}: crack boundaries differ", policy
            );
            prop_assert_eq!(
                &reference.piece_metas, &other.piece_metas,
                "{}: piece metas differ", policy
            );
            prop_assert_eq!(&reference.data, &other.data, "{}: physical orders differ", policy);
            prop_assert_eq!(reference.stats, other.stats, "{}: Stats differ", policy);
        }
    }
}

/// Every factory engine (paper zoo plus the midpoint family), run under
/// every index policy against the same query stream: per-query answers
/// (count + checksum) and final `Stats` must be bit-identical, and all
/// must agree with the scan oracle.
#[test]
fn every_engine_is_policy_invariant_and_oracle_correct() {
    let n = 6_000u64;
    let data = column(n, 3);
    let oracle = Oracle::new(&data);
    let queries: Vec<QueryRange> = (0..120u64)
        .map(|i| {
            let a = (i * 1_237) % (n - 500);
            QueryRange::new(a, a + 1 + (i * 53) % 400)
        })
        .collect();
    for kind in EngineKind::extended_selection() {
        let mut runs = Vec::new();
        for policy in IndexPolicy::ALL {
            let config = CrackConfig::default()
                .with_crack_size(256)
                .with_progressive_threshold(1_024)
                .with_index(policy);
            let mut engine = build_engine(kind, data.clone(), config, 42);
            let answers: Vec<(usize, u64)> = queries
                .iter()
                .map(|q| {
                    let out = engine.select(*q);
                    (out.len(), out.key_checksum(engine.data()))
                })
                .collect();
            runs.push((answers, engine.stats(), engine.name()));
        }
        let (reference, others) = runs.split_first().unwrap();
        for other in others {
            assert_eq!(
                reference.0, other.0,
                "{}: answers diverged across policies",
                reference.2
            );
            assert_eq!(
                reference.1, other.1,
                "{}: Stats diverged across policies",
                reference.2
            );
        }
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(
                reference.0[qi],
                (oracle.count(*q), oracle.checksum(*q)),
                "{}: query {qi} ({q}) wrong vs oracle",
                reference.2
            );
        }
    }
}

/// The update path (ripple-style `parts_mut` surgery happens in
/// `scrack_updates`; here the core-side contract): growing/shrinking the
/// column via `set_column_len` plus crack-position shifts behaves
/// identically under both policies.
#[test]
fn crack_position_shifts_are_policy_invariant() {
    for policy in IndexPolicy::ALL {
        let config = CrackConfig::default().with_index(policy);
        let mut col = CrackedColumn::new(column(2_000, 5), config);
        col.crack_on(500);
        col.crack_on(1_500);
        // Insert a key belonging to the middle piece [500, 1500): the
        // crack at 1500 shifts right and donates its first element to
        // the array end, exactly as ripple_insert does.
        let (data, index, _) = col.parts_mut();
        data.push(700);
        index.set_column_len(data.len());
        let id = index.find_crack(1_500).unwrap();
        let p = index.crack_pos(id);
        index.set_crack_pos(id, p + 1);
        let hole = data.len() - 1;
        data[hole] = data[p];
        data[p] = 700;
        col.check_integrity().unwrap();
        assert_eq!(
            col.index().iter_cracks().map(|(k, p, _)| (k, p)).collect::<Vec<_>>(),
            vec![(500, 500), (1_500, 1_501)],
            "{policy}"
        );
    }
}
