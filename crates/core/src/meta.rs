//! Per-piece state carried in the cracker index.

use scrack_index::PieceMeta;
use scrack_partition::PartitionJob;

/// State the stochastic engines attach to each piece of the cracker column.
#[derive(Debug, Clone, Default)]
pub struct PieceState {
    /// How many times this piece has been cracked by *original* cracking
    /// since the last stochastic crack; drives the ScrackMon selective
    /// policy ("each piece has a crack counter … when a new piece is
    /// created it inherits the counter from its parent piece", §4).
    pub crack_count: u32,
    /// The in-flight progressive partition of this piece, if any (PMDD1R).
    pub job: Option<PartitionJob>,
}

impl PieceMeta for PieceState {
    fn inherit(&self) -> Self {
        PieceState {
            crack_count: self.crack_count,
            // A partition job describes one concrete piece; it never
            // survives a split of that piece.
            job: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inherit_keeps_counter_drops_job() {
        let s = PieceState {
            crack_count: 5,
            job: Some(PartitionJob::new(10, 0, 100)),
        };
        let child = s.inherit();
        assert_eq!(child.crack_count, 5);
        assert!(child.job.is_none());
    }
}
