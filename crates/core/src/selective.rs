//! Selective stochastic cracking: apply stochastic cracks only sometimes.
//!
//! §4 of the paper explores whether stochastic cracking can be applied
//! *less often* to cut its (small) overhead: every other query
//! (FiftyFifty), with a coin flip (FlipCoin), only on pieces whose crack
//! counter passed a threshold (ScrackMon), or only on pieces larger than
//! L1 (the size-threshold variant). Figures 17–19 show none of them beats
//! continuous stochastic cracking — which this module lets the
//! reproduction verify.

use crate::config::CrackConfig;
use crate::cracked::CrackedColumn;
use crate::engine::Engine;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_columnstore::QueryOutput;
use scrack_types::{Element, QueryRange, Stats};

/// When to use a stochastic (MDD1R-style) crack instead of original
/// cracking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SelectivePolicy {
    /// Stochastic on every `x`-th query (query-grained). `x = 1` is
    /// continuous stochastic cracking; `x = 2` is the paper's FiftyFifty;
    /// larger `x` gives Fig. 18's sweep.
    EveryX(u32),
    /// Stochastic with probability `p` per query, decided by coin flip.
    FlipCoin(f64),
    /// ScrackMon (piece-grained): each piece counts how often original
    /// cracking touched it; reaching `threshold` triggers one stochastic
    /// crack and resets the counter (Fig. 19's sweep).
    Monitor(u32),
    /// Piece-grained size switch: stochastic only while the piece is
    /// larger than L1 ("within the cache the cracking costs are
    /// minimized", §4 — found to be a net loss in §5).
    SizeThreshold,
}

impl SelectivePolicy {
    /// Figure label for the policy.
    pub fn label(&self) -> String {
        match self {
            SelectivePolicy::EveryX(1) => "Scrack".into(),
            SelectivePolicy::EveryX(2) => "FiftyFifty".into(),
            SelectivePolicy::EveryX(x) => format!("Every{x}"),
            SelectivePolicy::FlipCoin(p) if (*p - 0.5).abs() < f64::EPSILON => "FlipCoin".into(),
            SelectivePolicy::FlipCoin(p) => format!("FlipCoin({p})"),
            SelectivePolicy::Monitor(x) => format!("ScrackMon{x}"),
            SelectivePolicy::SizeThreshold => "L1Switch".into(),
        }
    }
}

/// An engine mixing stochastic and original cracking per `SelectivePolicy`.
#[derive(Debug, Clone)]
pub struct SelectiveEngine<E: Element> {
    col: CrackedColumn<E>,
    rng: SmallRng,
    policy: SelectivePolicy,
    query_no: u64,
}

impl<E: Element> SelectiveEngine<E> {
    /// Builds the engine over `data`.
    pub fn new(data: Vec<E>, config: CrackConfig, seed: u64, policy: SelectivePolicy) -> Self {
        if let SelectivePolicy::EveryX(x) = policy {
            assert!(x >= 1, "EveryX period must be at least 1");
        }
        Self {
            col: CrackedColumn::new(data, config),
            rng: SmallRng::seed_from_u64(seed),
            policy,
            query_no: 0,
        }
    }

    /// Mutable access to the cracker column (for the update wrapper).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for SelectiveEngine<E> {
    fn name(&self) -> String {
        self.policy.label()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        let rng = &mut self.rng;
        let out = match self.policy {
            SelectivePolicy::EveryX(x) => {
                let stochastic = self.query_no.is_multiple_of(u64::from(x));
                if stochastic {
                    self.col.mdd1r_select(q, rng)
                } else {
                    self.col.select_original(q)
                }
            }
            SelectivePolicy::FlipCoin(p) => {
                if rng.gen_bool(p) {
                    self.col.mdd1r_select(q, rng)
                } else {
                    self.col.select_original(q)
                }
            }
            SelectivePolicy::Monitor(threshold) => self.col.selective_select(q, rng, |_, meta| {
                if meta.crack_count >= threshold {
                    meta.crack_count = 0;
                    true
                } else {
                    meta.crack_count += 1;
                    false
                }
            }),
            SelectivePolicy::SizeThreshold => {
                let l1 = self.col.config().cache.l1_elems(std::mem::size_of::<E>());
                self.col
                    .selective_select(q, rng, |piece, _| piece.len() > l1)
            }
        };
        self.query_no += 1;
        out
    }

    fn data(&self) -> &[E] {
        self.col.data()
    }

    fn stats(&self) -> Stats {
        self.col.stats()
    }

    fn reset_stats(&mut self) {
        self.col.stats_mut().reset();
    }

    fn quarantine_rebuild(&mut self) {
        self.col.quarantine_rebuild();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(SelectivePolicy::EveryX(1).label(), "Scrack");
        assert_eq!(SelectivePolicy::EveryX(2).label(), "FiftyFifty");
        assert_eq!(SelectivePolicy::EveryX(8).label(), "Every8");
        assert_eq!(SelectivePolicy::FlipCoin(0.5).label(), "FlipCoin");
        assert_eq!(SelectivePolicy::Monitor(10).label(), "ScrackMon10");
        assert_eq!(SelectivePolicy::SizeThreshold.label(), "L1Switch");
    }
}
