//! The correctness oracle: ground truth for any range select.

use scrack_types::{Element, QueryRange};

/// Ground-truth answers computed once from a sorted copy of the data.
///
/// Every engine must return, for every query, exactly the multiset of keys
/// the oracle reports — the central invariant of the test suite. Count and
/// checksum queries are `O(log n)` via binary search and prefix sums, so
/// oracle validation can run inside large experiment sweeps.
#[derive(Debug, Clone)]
pub struct Oracle {
    sorted: Vec<u64>,
    /// `prefix[i]` = wrapping sum of `sorted[..i]`.
    prefix: Vec<u64>,
}

impl Oracle {
    /// Builds the oracle from the column's initial contents.
    pub fn new<E: Element>(data: &[E]) -> Self {
        let mut sorted: Vec<u64> = data.iter().map(|e| e.key()).collect();
        sorted.sort_unstable();
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for k in &sorted {
            acc = acc.wrapping_add(*k);
            prefix.push(acc);
        }
        Self { sorted, prefix }
    }

    fn bounds(&self, q: QueryRange) -> (usize, usize) {
        let lo = self.sorted.partition_point(|k| *k < q.low);
        let hi = self.sorted.partition_point(|k| *k < q.high);
        (lo, hi)
    }

    /// Number of qualifying keys.
    pub fn count(&self, q: QueryRange) -> usize {
        let (lo, hi) = self.bounds(q);
        hi - lo
    }

    /// Wrapping sum of qualifying keys — must equal
    /// `QueryOutput::key_checksum` of any correct engine.
    pub fn checksum(&self, q: QueryRange) -> u64 {
        let (lo, hi) = self.bounds(q);
        self.prefix[hi].wrapping_sub(self.prefix[lo])
    }

    /// The qualifying keys in ascending order.
    pub fn keys(&self, q: QueryRange) -> &[u64] {
        let (lo, hi) = self.bounds(q);
        &self.sorted[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_checksum_keys_agree_with_naive_filter() {
        let data: Vec<u64> = (0..200).map(|i| (i * 83) % 200).collect();
        let oracle = Oracle::new(&data);
        for (a, b) in [(0u64, 200u64), (10, 20), (199, 200), (50, 50), (150, 500)] {
            let q = QueryRange::new(a, b);
            let expect: Vec<u64> = {
                let mut v: Vec<u64> = data.iter().copied().filter(|k| q.contains(*k)).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(oracle.count(q), expect.len());
            assert_eq!(oracle.keys(q), expect.as_slice());
            assert_eq!(
                oracle.checksum(q),
                expect.iter().fold(0u64, |s, k| s.wrapping_add(*k))
            );
        }
    }

    #[test]
    fn empty_data() {
        let oracle = Oracle::new(&[] as &[u64]);
        let q = QueryRange::new(0, 10);
        assert_eq!(oracle.count(q), 0);
        assert_eq!(oracle.checksum(q), 0);
        assert!(oracle.keys(q).is_empty());
    }

    #[test]
    fn duplicates_counted() {
        let data: Vec<u64> = vec![5, 5, 5, 1, 9];
        let oracle = Oracle::new(&data);
        assert_eq!(oracle.count(QueryRange::new(5, 6)), 3);
        assert_eq!(oracle.checksum(QueryRange::new(5, 6)), 15);
    }
}
