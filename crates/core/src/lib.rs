//! Adaptive indexing engines: original database cracking, the stochastic
//! cracking family, and the paper's baselines.
//!
//! This crate is the primary contribution of the reproduction of *Halim,
//! Idreos, Karras, Yap: Stochastic Database Cracking (VLDB 2012)*. It
//! provides, behind the single [`Engine`] interface:
//!
//! | Strategy | Paper section | Type |
//! |---|---|---|
//! | `Scan`, `Sort` | §3 baselines | [`ScanEngine`], [`SortEngine`] |
//! | `Crack` (original cracking) | §2–3 | [`CrackEngine`] |
//! | `DDC`, `DDR` | §4, Fig. 4 | [`DdcEngine`], [`DdrEngine`] |
//! | `DD1C`, `DD1R` | §4 | [`Dd1cEngine`], [`Dd1rEngine`] |
//! | `MDD1R` (a.k.a. `Scrack`) | §4, Fig. 5–6 | [`Mdd1rEngine`] |
//! | `P{x}%` progressive | §4 | [`ProgressiveEngine`] |
//! | FiftyFifty / FlipCoin / ScrackMon / L1-switch | §4 selective | [`SelectiveEngine`] |
//! | `R{N}crack` naive randomizers | §5, Fig. 12 | [`RandomInjectEngine`] |
//!
//! The physical machinery lives in [`CrackedColumn`]; everything above it
//! is thin policy. [`build_engine`] constructs any strategy by
//! [`EngineKind`], and [`Oracle`] supplies ground truth for validation.
//!
//! # Example
//!
//! ```
//! use scrack_core::{build_engine, CrackConfig, EngineKind, Oracle};
//! use scrack_types::QueryRange;
//!
//! let data: Vec<u64> = (0..10_000).rev().collect();
//! let oracle = Oracle::new(&data);
//! let mut engine = build_engine(EngineKind::Mdd1r, data, CrackConfig::default(), 42);
//! let q = QueryRange::new(100, 200);
//! let out = engine.select(q);
//! assert_eq!(out.len(), oracle.count(q));
//! assert_eq!(out.key_checksum(engine.data()), oracle.checksum(q));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod config;
mod cracked;
mod engine;
mod engines;
mod factory;
pub mod fault;
mod meta;
mod naive;
mod oracle;
mod selective;

pub use baseline::{ScanEngine, SortEngine};
pub use config::{CrackConfig, UpdatePolicy};
// Re-exported so engine construction sites can name the kernel and index
// policies without depending on the substrate crates directly.
pub use scrack_index::IndexPolicy;
pub use scrack_partition::KernelPolicy;
pub use cracked::CrackedColumn;
pub use engine::Engine;
pub use engines::{
    CrackEngine, Dd1cEngine, Dd1mEngine, Dd1rEngine, DdcEngine, DdmEngine, DdrEngine, Mdd1mEngine,
    Mdd1rEngine, ProgressiveEngine,
};
pub use factory::{build_engine, EngineKind};
pub use fault::{FaultInjector, FaultKind, FaultPlan};
pub use meta::PieceState;
pub use naive::RandomInjectEngine;
pub use oracle::Oracle;
pub use selective::{SelectiveEngine, SelectivePolicy};
