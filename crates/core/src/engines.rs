//! Engine wrappers for original cracking and the stochastic family.

use crate::config::CrackConfig;
use crate::cracked::CrackedColumn;
use crate::engine::Engine;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_columnstore::QueryOutput;
use scrack_types::{Element, QueryRange, Stats};

macro_rules! impl_engine_common {
    ($ty:ident) => {
        fn data(&self) -> &[E] {
            self.col.data()
        }

        fn stats(&self) -> Stats {
            self.col.stats()
        }

        fn reset_stats(&mut self) {
            self.col.stats_mut().reset();
        }

        fn quarantine_rebuild(&mut self) {
            self.col.quarantine_rebuild();
        }
    };
}

/// Original database cracking (`Crack` in every figure).
#[derive(Debug, Clone)]
pub struct CrackEngine<E: Element> {
    col: CrackedColumn<E>,
}

impl<E: Element> CrackEngine<E> {
    /// Builds the engine over `data`.
    pub fn new(data: Vec<E>, config: CrackConfig) -> Self {
        Self {
            col: CrackedColumn::new(data, config),
        }
    }

    /// Read access to the underlying cracker column.
    pub fn cracked(&self) -> &CrackedColumn<E> {
        &self.col
    }

    /// Mutable access to the underlying cracker column (used by the update
    /// wrapper to merge pending updates before a select).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for CrackEngine<E> {
    fn name(&self) -> String {
        "Crack".into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.col.select_original(q)
    }

    impl_engine_common!(CrackEngine);
}

/// DDC: recursive center (median) cracks down to `CRACK_SIZE` (Fig. 4).
#[derive(Debug, Clone)]
pub struct DdcEngine<E: Element> {
    col: CrackedColumn<E>,
}

impl<E: Element> DdcEngine<E> {
    /// Builds the engine over `data`.
    pub fn new(data: Vec<E>, config: CrackConfig) -> Self {
        Self {
            col: CrackedColumn::new(data, config),
        }
    }

    /// Mutable access to the cracker column (for the update wrapper).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for DdcEngine<E> {
    fn name(&self) -> String {
        "DDC".into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.col.select_with(q, |c, k| c.ddc_crack(k))
    }

    impl_engine_common!(DdcEngine);
}

/// DDR: recursive random-pivot cracks down to `CRACK_SIZE`.
#[derive(Debug, Clone)]
pub struct DdrEngine<E: Element> {
    col: CrackedColumn<E>,
    rng: SmallRng,
}

impl<E: Element> DdrEngine<E> {
    /// Builds the engine over `data` with a deterministic RNG seed.
    pub fn new(data: Vec<E>, config: CrackConfig, seed: u64) -> Self {
        Self {
            col: CrackedColumn::new(data, config),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Mutable access to the cracker column (for the update wrapper).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for DdrEngine<E> {
    fn name(&self) -> String {
        "DDR".into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        let rng = &mut self.rng;
        self.col.select_with(q, |c, k| c.ddr_crack(k, rng))
    }

    impl_engine_common!(DdrEngine);
}

/// DD1C: at most one median crack per bound, then plain cracking.
#[derive(Debug, Clone)]
pub struct Dd1cEngine<E: Element> {
    col: CrackedColumn<E>,
}

impl<E: Element> Dd1cEngine<E> {
    /// Builds the engine over `data`.
    pub fn new(data: Vec<E>, config: CrackConfig) -> Self {
        Self {
            col: CrackedColumn::new(data, config),
        }
    }

    /// Mutable access to the cracker column (for the update wrapper).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for Dd1cEngine<E> {
    fn name(&self) -> String {
        "DD1C".into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.col.select_with(q, |c, k| c.dd1c_crack(k))
    }

    impl_engine_common!(Dd1cEngine);
}

/// DD1R: at most one random crack per bound, then plain cracking.
#[derive(Debug, Clone)]
pub struct Dd1rEngine<E: Element> {
    col: CrackedColumn<E>,
    rng: SmallRng,
}

impl<E: Element> Dd1rEngine<E> {
    /// Builds the engine over `data` with a deterministic RNG seed.
    pub fn new(data: Vec<E>, config: CrackConfig, seed: u64) -> Self {
        Self {
            col: CrackedColumn::new(data, config),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Mutable access to the cracker column (for the update wrapper).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for Dd1rEngine<E> {
    fn name(&self) -> String {
        "DD1R".into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        let rng = &mut self.rng;
        self.col.select_with(q, |c, k| c.dd1r_crack(k, rng))
    }

    impl_engine_common!(Dd1rEngine);
}

/// MDD1R: one random crack per end piece with integrated materialization;
/// the default `Scrack` of the paper's later figures.
#[derive(Debug, Clone)]
pub struct Mdd1rEngine<E: Element> {
    col: CrackedColumn<E>,
    rng: SmallRng,
}

impl<E: Element> Mdd1rEngine<E> {
    /// Builds the engine over `data` with a deterministic RNG seed.
    pub fn new(data: Vec<E>, config: CrackConfig, seed: u64) -> Self {
        Self {
            col: CrackedColumn::new(data, config),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Mutable access to the cracker column (for the update wrapper).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for Mdd1rEngine<E> {
    fn name(&self) -> String {
        "MDD1R".into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        let rng = &mut self.rng;
        self.col.mdd1r_select(q, rng)
    }

    impl_engine_common!(Mdd1rEngine);
}

/// DDM: recursive key-space midpoint cracks down to `CRACK_SIZE` — the
/// deterministic, data-driven counterpart of DDC/DDR.
#[derive(Debug, Clone)]
pub struct DdmEngine<E: Element> {
    col: CrackedColumn<E>,
}

impl<E: Element> DdmEngine<E> {
    /// Builds the engine over `data` (no RNG: the family is
    /// deterministic by construction).
    pub fn new(data: Vec<E>, config: CrackConfig) -> Self {
        Self {
            col: CrackedColumn::new(data, config),
        }
    }

    /// Mutable access to the cracker column (for the update wrapper).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for DdmEngine<E> {
    fn name(&self) -> String {
        "DDM".into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.col.select_with(q, |c, k| c.ddm_crack(k))
    }

    impl_engine_common!(DdmEngine);
}

/// DD1M: at most one midpoint crack per bound, then plain cracking.
#[derive(Debug, Clone)]
pub struct Dd1mEngine<E: Element> {
    col: CrackedColumn<E>,
}

impl<E: Element> Dd1mEngine<E> {
    /// Builds the engine over `data`.
    pub fn new(data: Vec<E>, config: CrackConfig) -> Self {
        Self {
            col: CrackedColumn::new(data, config),
        }
    }

    /// Mutable access to the cracker column (for the update wrapper).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for Dd1mEngine<E> {
    fn name(&self) -> String {
        "DD1M".into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.col.select_with(q, |c, k| c.dd1m_crack(k))
    }

    impl_engine_common!(Dd1mEngine);
}

/// MDD1M: the MDD1R query shape with midpoint pivots — never cracks on
/// the query bounds, fully deterministic, no RNG.
#[derive(Debug, Clone)]
pub struct Mdd1mEngine<E: Element> {
    col: CrackedColumn<E>,
}

impl<E: Element> Mdd1mEngine<E> {
    /// Builds the engine over `data`.
    pub fn new(data: Vec<E>, config: CrackConfig) -> Self {
        Self {
            col: CrackedColumn::new(data, config),
        }
    }

    /// Mutable access to the cracker column (for the update wrapper).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for Mdd1mEngine<E> {
    fn name(&self) -> String {
        "MDD1M".into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.col.mdd1m_select(q)
    }

    impl_engine_common!(Mdd1mEngine);
}

/// Progressive stochastic cracking: MDD1R whose cracks are completed
/// collaboratively by successive queries under a swap budget of
/// `swap_pct`% of the piece size. `P100%` ≡ MDD1R.
#[derive(Debug, Clone)]
pub struct ProgressiveEngine<E: Element> {
    col: CrackedColumn<E>,
    rng: SmallRng,
    swap_pct: f64,
}

impl<E: Element> ProgressiveEngine<E> {
    /// Builds the engine with the given swap percentage (e.g. `10.0` for
    /// the paper's default `P10%`).
    pub fn new(data: Vec<E>, config: CrackConfig, seed: u64, swap_pct: f64) -> Self {
        assert!(swap_pct > 0.0, "swap budget must be positive");
        Self {
            col: CrackedColumn::new(data, config),
            rng: SmallRng::seed_from_u64(seed),
            swap_pct,
        }
    }

    /// Mutable access to the cracker column (for the update wrapper).
    ///
    /// Progressive engines may hold in-flight partition jobs; callers
    /// that ripple updates in must settle them first
    /// ([`CrackedColumn::settle_all_jobs`]).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for ProgressiveEngine<E> {
    fn name(&self) -> String {
        if (self.swap_pct - self.swap_pct.round()).abs() < f64::EPSILON {
            format!("P{}%", self.swap_pct.round() as u64)
        } else {
            format!("P{}%", self.swap_pct)
        }
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        let rng = &mut self.rng;
        self.col.pmdd1r_select(q, self.swap_pct, rng)
    }

    impl_engine_common!(ProgressiveEngine);
}
