//! Naive randomization: inject stand-alone random queries.
//!
//! "A natural question is why we do not simply impose random queries to
//! deal with robustness" (§5, Fig. 12). `RNcrack` answers one synthetic
//! random-range query through original cracking before every `N`-th user
//! query. The experiment shows this helps, but stays an order of magnitude
//! behind stochastic cracking, because the auxiliary work is *not*
//! integrated with query answering.

use crate::config::CrackConfig;
use crate::cracked::CrackedColumn;
use crate::engine::Engine;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_columnstore::QueryOutput;
use scrack_types::{Element, QueryRange, Stats};

/// Original cracking plus one injected random query every `every` user
/// queries (`R1crack`, `R2crack`, `R4crack`, `R8crack` in Fig. 12).
#[derive(Debug, Clone)]
pub struct RandomInjectEngine<E: Element> {
    col: CrackedColumn<E>,
    rng: SmallRng,
    every: u32,
    query_no: u64,
    /// Exclusive upper bound of the key domain, for generating random
    /// ranges of the same width as the user query.
    key_end: u64,
}

impl<E: Element> RandomInjectEngine<E> {
    /// Builds the engine; `every` must be at least 1.
    pub fn new(data: Vec<E>, config: CrackConfig, seed: u64, every: u32) -> Self {
        assert!(every >= 1, "injection period must be at least 1");
        let key_end = data
            .iter()
            .map(|e| e.key())
            .max()
            .map_or(0, |m| m.saturating_add(1));
        Self {
            col: CrackedColumn::new(data, config),
            rng: SmallRng::seed_from_u64(seed),
            every,
            query_no: 0,
            key_end,
        }
    }

    /// Mutable access to the cracker column (for the update wrapper).
    pub fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        &mut self.col
    }
}

impl<E: Element> Engine<E> for RandomInjectEngine<E> {
    fn name(&self) -> String {
        format!("R{}crack", self.every)
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        if self.query_no.is_multiple_of(u64::from(self.every)) && self.key_end > 0 {
            // Inject one random query of the same selectivity; its result
            // is discarded but its cracks (and cost) remain.
            let width = q.width().min(self.key_end);
            let max_low = self.key_end - width;
            let low = if max_low == 0 {
                0
            } else {
                self.rng.gen_range(0..max_low)
            };
            let _ = self.col.select_original(QueryRange::new(low, low + width));
        }
        self.query_no += 1;
        self.col.select_original(q)
    }

    fn data(&self) -> &[E] {
        self.col.data()
    }

    fn stats(&self) -> Stats {
        self.col.stats()
    }

    fn reset_stats(&mut self) {
        self.col.stats_mut().reset();
    }

    fn quarantine_rebuild(&mut self) {
        self.col.quarantine_rebuild();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;

    #[test]
    fn injection_cracks_more_than_plain_cracking() {
        let data: Vec<u64> = (0..10_000).map(|i| (i * 277) % 10_000).collect();
        let mut plain = crate::CrackEngine::new(data.clone(), CrackConfig::default());
        let mut inject = RandomInjectEngine::new(data, CrackConfig::default(), 7, 1);
        for i in 0..50u64 {
            let q = QueryRange::new(i * 100, i * 100 + 10);
            let _ = crate::Engine::select(&mut plain, q);
            let _ = inject.select(q);
        }
        assert!(
            inject.stats().cracks > crate::Engine::stats(&plain).cracks,
            "R1crack must add auxiliary cracks beyond the user queries'"
        );
    }

    #[test]
    fn results_stay_correct_despite_injection() {
        let data: Vec<u64> = (0..5_000).map(|i| (i * 733) % 5_000).collect();
        let oracle = Oracle::new(&data);
        for every in [1u32, 2, 8] {
            let mut eng = RandomInjectEngine::new(data.clone(), CrackConfig::default(), 5, every);
            for i in 0..40u64 {
                let q = QueryRange::new((i * 119) % 4_900, (i * 119) % 4_900 + 50);
                let out = eng.select(q);
                assert_eq!(out.len(), oracle.count(q), "every={every} query {i}");
            }
        }
    }

    #[test]
    fn name_reflects_period() {
        let eng = RandomInjectEngine::new(vec![1u64, 2, 3], CrackConfig::default(), 1, 4);
        assert_eq!(eng.name(), "R4crack");
    }

    #[test]
    fn empty_column_is_harmless() {
        let mut eng: RandomInjectEngine<u64> =
            RandomInjectEngine::new(vec![], CrackConfig::default(), 1, 2);
        let out = eng.select(QueryRange::new(0, 10));
        assert!(out.is_empty());
    }
}
