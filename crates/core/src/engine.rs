//! The adaptive-indexing engine interface.

use scrack_columnstore::QueryOutput;
use scrack_types::{Element, QueryRange, Stats};

/// An adaptive indexing strategy answering range selects over one column.
///
/// Every strategy of the paper — the `Scan`/`Sort` baselines, original
/// cracking, the stochastic family, selective and naive variants, and the
/// partition/merge hybrids — implements this trait. A call to
/// [`Engine::select`] both answers the query and (for adaptive engines)
/// performs whatever physical reorganization the strategy dictates, because
/// in cracking "index creation and optimization occur collaterally to query
/// execution" (§2).
pub trait Engine<E: Element> {
    /// Display name, matching the paper's figure labels (e.g. `"DD1R"`,
    /// `"P10%"`, `"FlipCoin"`).
    fn name(&self) -> String;

    /// Answers `[q.low, q.high)`, reorganizing as a side effect.
    ///
    /// Views in the returned [`QueryOutput`] point into [`Engine::data`]
    /// and are valid until the next `select`.
    fn select(&mut self, q: QueryRange) -> QueryOutput<E>;

    /// The buffer result views resolve against (the engine's current
    /// physical column order).
    fn data(&self) -> &[E];

    /// Cumulative physical-cost counters.
    fn stats(&self) -> Stats;

    /// Zeroes the cost counters (e.g. between experiment phases).
    fn reset_stats(&mut self);

    /// Discards any adaptive index state and rebuilds from the current
    /// physical data — the serving layer's quarantine ladder, at engine
    /// granularity. The data multiset is preserved, so subsequent
    /// selects stay oracle-correct; the engine simply re-learns its
    /// index adaptively, exactly as a freshly built engine over the same
    /// physical column would. Engines with no discardable index state
    /// (the scan and sort baselines) treat this as a no-op.
    fn quarantine_rebuild(&mut self) {}

    /// Answers `[q.low, q.high)` as a `(count, key_sum)` aggregate —
    /// the serving layers' answer shape. Defaults to running
    /// [`Engine::select`] and folding the result views; engines with a
    /// cheaper direct path may override.
    fn select_aggregate(&mut self, q: QueryRange) -> (usize, u64) {
        let out = self.select(q);
        let count = out.len();
        let sum = out.key_checksum(self.data());
        (count, sum)
    }
}
