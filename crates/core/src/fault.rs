//! Deterministic fault injection for the serving stack.
//!
//! The paper's thesis is robustness against adversarial *workloads*;
//! this module supplies the machinery to prove robustness against
//! adversarial *conditions* — worker panics mid-reorganization, stalled
//! cracks, poisoned shards, queue overload — without ever touching a
//! production code path when disabled.
//!
//! A [`FaultPlan`] is a tiny `Copy` description of **one** fault: a
//! [`FaultKind`] (the injection site), a 1-based `trigger` hit count
//! (fire on the N-th time the site is reached), an optional `target`
//! owner (shard/chunk id) and per-kind parameters. It rides on
//! [`CrackConfig`](crate::CrackConfig), so every engine, wrapper and
//! scheduler built from a config inherits the plan — a faulted run is
//! exactly a normal run with one extra config field, reproducible from
//! the same seed.
//!
//! A [`FaultInjector`] is the per-owner state (hit counter) evaluated at
//! the sites. Disabled plans cost one branch on a cached `Option`
//! discriminant per site visit — sites sit next to O(piece) kernel work,
//! so release paths pay nothing measurable.
//!
//! Injected panics carry the [`INJECTED_PANIC_PREFIX`] so harnesses (and
//! humans reading CI logs) can tell a drill from a real defect.

use std::sync::atomic::{AtomicU32, Ordering};

/// The fault classes the serving gauntlet injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic in the middle of kernel reorganization work (after the
    /// physical partition ran, before the crack registers) — the worst
    /// spot: data reorganized, index not yet updated.
    PanicInKernel,
    /// A deterministic spin-delay inside the crack path, to blow
    /// per-query deadline budgets.
    DelayInCrack,
    /// Marks a shard's cracker index as corrupt at query time; the
    /// serving layer must quarantine and degrade to scans.
    PoisonShard,
    /// Clamps the target's admission-queue capacity to the plan's
    /// overload capacity, forcing shed/block decisions.
    QueueOverload,
    /// Panic inside a transaction's commit path — after its write locks
    /// are granted, before its ops land in the committed log. The
    /// session layer must abort that txn only, release every lock, and
    /// publish none of its writes.
    PanicInCommit,
}

impl FaultKind {
    /// The kind's CLI/report label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::PanicInKernel => "panic",
            FaultKind::DelayInCrack => "delay",
            FaultKind::PoisonShard => "poison",
            FaultKind::QueueOverload => "overload",
            FaultKind::PanicInCommit => "panic-commit",
        }
    }

    /// Parses a CLI label (case-insensitive); `None` if unrecognized.
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s.to_ascii_lowercase().as_str() {
            "panic" | "panic-in-kernel" => Some(FaultKind::PanicInKernel),
            "delay" | "delay-in-crack" => Some(FaultKind::DelayInCrack),
            "poison" | "poison-shard" | "poisoned-shard" => Some(FaultKind::PoisonShard),
            "overload" | "queue-overload" => Some(FaultKind::QueueOverload),
            "panic-commit" | "panic-in-commit" => Some(FaultKind::PanicInCommit),
            _ => None,
        }
    }

    /// Every kind, for gauntlet sweeps.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::PanicInKernel,
        FaultKind::DelayInCrack,
        FaultKind::PoisonShard,
        FaultKind::QueueOverload,
        FaultKind::PanicInCommit,
    ];
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One planned fault: kind, injection-site trigger count, optional
/// target owner, and per-kind parameters. `Copy` so it rides on
/// [`CrackConfig`](crate::CrackConfig) for free; the default plan is
/// disabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    kind: Option<FaultKind>,
    /// Fire on the `trigger`-th hit of the site (1-based).
    trigger: u32,
    /// Keep firing for this many consecutive hits (default 1).
    repeat: u32,
    /// Restrict the fault to one shard/chunk owner id; `None` arms every
    /// owner.
    target: Option<usize>,
    /// Spin units for [`FaultKind::DelayInCrack`].
    delay_units: u32,
    /// Forced queue capacity for [`FaultKind::QueueOverload`].
    overload_capacity: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultPlan {
    /// The no-fault plan (the default on every config).
    pub const fn disabled() -> Self {
        Self {
            kind: None,
            trigger: 1,
            repeat: 1,
            target: None,
            delay_units: 1 << 20,
            overload_capacity: 1,
        }
    }

    /// Panic inside kernel reorganization on the `trigger`-th crack.
    pub const fn panic_in_kernel(trigger: u32) -> Self {
        Self {
            kind: Some(FaultKind::PanicInKernel),
            trigger,
            ..Self::disabled()
        }
    }

    /// Spin-delay `units` of busy work inside the crack path, starting
    /// on the `trigger`-th crack.
    pub const fn delay_in_crack(trigger: u32, units: u32) -> Self {
        Self {
            kind: Some(FaultKind::DelayInCrack),
            trigger,
            delay_units: units,
            ..Self::disabled()
        }
    }

    /// Poison the owning shard's cracker index on the `trigger`-th
    /// select it serves.
    pub const fn poison_shard(trigger: u32) -> Self {
        Self {
            kind: Some(FaultKind::PoisonShard),
            trigger,
            ..Self::disabled()
        }
    }

    /// Clamp admission-queue capacity to `capacity` queries per shard.
    pub const fn queue_overload(capacity: usize) -> Self {
        Self {
            kind: Some(FaultKind::QueueOverload),
            overload_capacity: capacity,
            ..Self::disabled()
        }
    }

    /// Panic inside the `trigger`-th transaction commit, after lock
    /// grant and before the log append — the lock-leak window.
    pub const fn panic_in_commit(trigger: u32) -> Self {
        Self {
            kind: Some(FaultKind::PanicInCommit),
            trigger,
            ..Self::disabled()
        }
    }

    /// Restricts the fault to owner (shard/chunk) id `target`.
    pub const fn on_target(mut self, target: usize) -> Self {
        self.target = Some(target);
        self
    }

    /// Fires on `repeat` consecutive hits instead of once.
    pub const fn with_repeat(mut self, repeat: u32) -> Self {
        self.repeat = if repeat == 0 { 1 } else { repeat };
        self
    }

    /// The planned fault kind, `None` when disabled.
    #[inline]
    pub const fn kind(&self) -> Option<FaultKind> {
        self.kind
    }

    /// Whether any fault is planned.
    #[inline]
    pub const fn is_armed(&self) -> bool {
        self.kind.is_some()
    }

    /// The 1-based trigger hit count.
    pub const fn trigger(&self) -> u32 {
        self.trigger
    }

    /// Spin units for the delay fault.
    pub const fn delay_units(&self) -> u32 {
        self.delay_units
    }

    /// The forced queue capacity while a [`FaultKind::QueueOverload`]
    /// plan is armed, `None` otherwise.
    pub fn overload_capacity(&self) -> Option<usize> {
        match self.kind {
            Some(FaultKind::QueueOverload) => Some(self.overload_capacity),
            _ => None,
        }
    }

    /// The plan as seen by owner id `owner`: unchanged if untargeted or
    /// targeted at `owner` (target cleared), disabled otherwise. Shard
    /// constructors use this so exactly one shard arms a targeted plan.
    pub fn scoped_to(&self, owner: usize) -> FaultPlan {
        match self.target {
            Some(t) if t != owner => FaultPlan::disabled(),
            _ => FaultPlan {
                target: None,
                ..*self
            },
        }
    }
}

/// Per-owner injector state: the plan plus a hit counter. Each column /
/// shard / chunk owns its own injector, so trigger counts are
/// deterministic per owner regardless of thread scheduling. (The counter
/// is atomic only so owning types stay `Sync`; each owner's sites are
/// driven under `&mut` or a lock, never concurrently.)
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    hits: AtomicU32,
}

impl Clone for FaultInjector {
    fn clone(&self) -> Self {
        Self {
            plan: self.plan,
            hits: AtomicU32::new(self.hits.load(Ordering::Relaxed)),
        }
    }
}

impl FaultInjector {
    /// An injector evaluating `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            hits: AtomicU32::new(0),
        }
    }

    /// An injector that never fires.
    pub fn disabled() -> Self {
        Self::new(FaultPlan::disabled())
    }

    /// Counts one hit of a `kind` site; `true` exactly when this hit is
    /// within the plan's firing window (`trigger ..= trigger+repeat-1`).
    /// One branch when the plan is disabled or of another kind.
    #[inline]
    pub fn poll(&self, kind: FaultKind) -> bool {
        if self.plan.kind != Some(kind) {
            return false;
        }
        let h = self.hits.fetch_add(1, Ordering::Relaxed).saturating_add(1);
        h >= self.plan.trigger && h - self.plan.trigger < self.plan.repeat
    }

    /// Whether the firing window has been entered at least once.
    pub fn has_fired(&self) -> bool {
        self.plan.is_armed() && self.hits.load(Ordering::Relaxed) >= self.plan.trigger
    }

    /// Site hits counted so far.
    pub fn hits(&self) -> u32 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The plan this injector evaluates.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }
}

/// Marker prefix on every injected panic message, so harnesses and CI
/// logs can tell a drill from a real defect.
pub const INJECTED_PANIC_PREFIX: &str = "scrack-injected-fault";

/// Panics with the injected-fault marker; `site` names the code site.
pub fn fire_panic(site: &str) -> ! {
    panic!("{INJECTED_PANIC_PREFIX}: {site}")
}

/// Whether a caught panic payload is an injected drill (vs a real bug).
pub fn is_injected_panic(message: &str) -> bool {
    message.contains(INJECTED_PANIC_PREFIX)
}

/// Deterministic busy work (no clock, no syscall): spins `units`
/// iterations of arithmetic the optimizer cannot remove.
pub fn spin_delay(units: u32) {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..units {
        acc = std::hint::black_box(acc.rotate_left(7) ^ u64::from(i));
    }
    std::hint::black_box(acc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let inj = FaultInjector::disabled();
        for _ in 0..100 {
            assert!(!inj.poll(FaultKind::PanicInKernel));
            assert!(!inj.poll(FaultKind::QueueOverload));
        }
        assert!(!inj.has_fired());
        assert_eq!(inj.hits(), 0, "disabled plans do not even count hits");
    }

    #[test]
    fn fires_exactly_on_the_trigger_hit() {
        let inj = FaultInjector::new(FaultPlan::panic_in_kernel(3));
        assert!(!inj.poll(FaultKind::PanicInKernel));
        assert!(!inj.poll(FaultKind::PanicInKernel));
        assert!(inj.poll(FaultKind::PanicInKernel), "third hit fires");
        assert!(!inj.poll(FaultKind::PanicInKernel), "fires once by default");
        assert!(inj.has_fired());
    }

    #[test]
    fn repeat_widens_the_firing_window() {
        let inj = FaultInjector::new(FaultPlan::delay_in_crack(2, 7).with_repeat(3));
        let fired: Vec<bool> = (0..6).map(|_| inj.poll(FaultKind::DelayInCrack)).collect();
        assert_eq!(fired, [false, true, true, true, false, false]);
    }

    #[test]
    fn other_kinds_do_not_consume_hits() {
        let inj = FaultInjector::new(FaultPlan::poison_shard(2));
        assert!(!inj.poll(FaultKind::PanicInKernel));
        assert!(!inj.poll(FaultKind::PoisonShard), "first poison hit");
        assert!(!inj.poll(FaultKind::DelayInCrack));
        assert!(inj.poll(FaultKind::PoisonShard), "second poison hit fires");
    }

    #[test]
    fn scoping_disables_other_owners_and_clears_the_target() {
        let plan = FaultPlan::panic_in_kernel(1).on_target(2);
        assert!(!plan.scoped_to(0).is_armed());
        assert!(!plan.scoped_to(1).is_armed());
        let mine = plan.scoped_to(2);
        assert!(mine.is_armed());
        // Cleared target: the owner re-scoping its own plan keeps it.
        assert!(mine.scoped_to(7).is_armed());
        // Untargeted plans arm every owner.
        assert!(FaultPlan::poison_shard(1).scoped_to(5).is_armed());
    }

    #[test]
    fn overload_capacity_is_kind_gated() {
        assert_eq!(FaultPlan::queue_overload(2).overload_capacity(), Some(2));
        assert_eq!(FaultPlan::panic_in_kernel(1).overload_capacity(), None);
        assert_eq!(FaultPlan::disabled().overload_capacity(), None);
    }

    #[test]
    fn injected_panics_are_recognizable() {
        let caught = std::panic::catch_unwind(|| fire_panic("kernel"));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(is_injected_panic(&msg), "{msg}");
        assert!(!is_injected_panic("index out of bounds"));
    }

    #[test]
    fn labels_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(FaultKind::parse("Poisoned-Shard"), Some(FaultKind::PoisonShard));
        assert_eq!(FaultKind::parse("meteor"), None);
    }

    #[test]
    fn spin_delay_is_pure_busy_work() {
        spin_delay(0);
        spin_delay(10_000); // must terminate, no clock involved
    }
}
