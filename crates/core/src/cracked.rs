//! The cracker column: data array + cracker index + reorganization ops.
//!
//! This module implements the physical reorganization algorithms of the
//! paper on top of the kernel in `scrack-partition`:
//!
//! * [`CrackedColumn::crack_on`] / [`CrackedColumn::select_original`] —
//!   original database cracking (Idreos et al., CIDR 2007; §2–3);
//! * [`CrackedColumn::ddc_crack`] — Data Driven Center (Fig. 4);
//! * [`CrackedColumn::ddr_crack`] — Data Driven Random;
//! * [`CrackedColumn::dd1c_crack`] / [`CrackedColumn::dd1r_crack`] — the
//!   single-auxiliary-crack variants;
//! * [`CrackedColumn::mdd1r_select`] — materializing DD1R (Fig. 5/6);
//! * [`CrackedColumn::pmdd1r_select`] — progressive stochastic cracking;
//! * [`CrackedColumn::ddm_crack`] / [`CrackedColumn::dd1m_crack`] /
//!   [`CrackedColumn::mdd1m_select`] — the *data-driven midpoint* family
//!   (PR 10, after the ART-cracking study of Wu et al.): auxiliary splits
//!   land on key-space midpoints instead of query predicates or random
//!   pivots, so the split schedule is workload-independent — sequential
//!   and skewed query streams cannot degenerate it — and fully
//!   deterministic (no RNG anywhere in the family).

use crate::config::CrackConfig;
use crate::fault::{self, FaultInjector, FaultKind};
use crate::meta::PieceState;
use rand::Rng;
use scrack_columnstore::QueryOutput;
use scrack_index::{CrackerIndex, Piece};
use scrack_partition::{
    advance_job, crack_in_three_policy, crack_in_two_policy, median_partition_policy,
    scan_filter_policy, split_and_materialize, Fringe, JobStatus, PartitionJob,
};
use scrack_types::{Element, QueryRange, Stats};

/// A column physically reorganized by cracking, plus its cracker index.
///
/// All `*_crack` methods share the contract of the paper's
/// `crack(C, v)`: they return the position `p` such that, afterwards,
/// positions `< p` hold keys `< v` and positions `>= p` hold keys `>= v`,
/// registering every crack they introduce in the index.
#[derive(Debug, Clone)]
pub struct CrackedColumn<E: Element> {
    data: Vec<E>,
    index: CrackerIndex<PieceState>,
    stats: Stats,
    config: CrackConfig,
    /// Evaluates `config.fault` at the reorganization site; one branch
    /// per new crack when disabled (the default).
    fault: FaultInjector,
    /// Cached `(min_key, max_key)` span, computed lazily on the first
    /// midpoint-family operation (the only consumer). May go stale when
    /// updates append keys outside it; staleness only skews the *balance*
    /// of midpoint splits, never their validity, and
    /// [`CrackedColumn::quarantine_rebuild`] recomputes it.
    domain: Option<(u64, u64)>,
}

impl<E: Element> CrackedColumn<E> {
    /// Takes ownership of `data` as a single uncracked piece; the cracker
    /// index runs on `config.index`'s representation.
    pub fn new(data: Vec<E>, config: CrackConfig) -> Self {
        let index = CrackerIndex::with_policy(data.len(), config.index);
        Self {
            data,
            index,
            stats: Stats::new(),
            config,
            fault: FaultInjector::new(config.fault),
            domain: None,
        }
    }

    /// The column's current physical order.
    pub fn data(&self) -> &[E] {
        &self.data
    }

    /// The cracker index.
    pub fn index(&self) -> &CrackerIndex<PieceState> {
        &self.index
    }

    /// Cumulative cost counters.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Mutable access to the cost counters.
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// The configuration in effect.
    pub fn config(&self) -> CrackConfig {
        self.config
    }

    /// Splits the column into its raw parts for the update machinery
    /// (Ripple needs to grow/shrink the array and shift crack positions in
    /// lockstep). The caller must uphold the cracker invariant.
    pub fn parts_mut(&mut self) -> (&mut Vec<E>, &mut CrackerIndex<PieceState>, &mut Stats) {
        (&mut self.data, &mut self.index, &mut self.stats)
    }

    /// The `(min_key, max_key)` span of the column's keys, or `None` for
    /// an empty column.
    ///
    /// One O(n) scan, not charged to [`Stats`] (it is metadata for
    /// snapshot publication, not query work): a reader holding the span
    /// can answer bounds that fall **outside** it without any crack
    /// existing — `q.low <= min_key` pins the view start to `0`,
    /// `q.high > max_key` pins the view end to `len` — which is what lets
    /// edge queries (tails past the max key, lows under the min) take the
    /// concurrent read fast path forever instead of re-cracking.
    pub fn key_span(&self) -> Option<(u64, u64)> {
        let mut it = self.data.iter();
        let first = it.next()?.key();
        Some(it.fold((first, first), |(lo, hi), e| {
            let k = e.key();
            (lo.min(k), hi.max(k))
        }))
    }

    /// `CRACK_SIZE` in elements (piece-size threshold of DDC/DDR).
    #[inline]
    fn crack_size(&self) -> usize {
        self.config.crack_size(std::mem::size_of::<E>())
    }

    /// Whether any piece has an in-flight progressive partition job.
    ///
    /// The Ripple update path shifts elements between pieces, which would
    /// invalidate job cursors; updates therefore require this to be false
    /// (it always is for `Crack` and `MDD1R`, the engines the paper's
    /// update experiment uses).
    pub fn has_active_jobs(&self) -> bool {
        self.index
            .iter_pieces()
            .any(|p| self.index.piece_meta(&p).job.is_some())
    }

    /// Full-column invariant check: every piece's keys lie within its
    /// index bounds, and crack positions are monotone. O(n); for tests
    /// and debug assertions only.
    pub fn check_integrity(&self) -> Result<(), String> {
        if !self.index.check_positions_monotone() {
            return Err("crack positions not monotone".into());
        }
        if self.index.column_len() != self.data.len() {
            return Err(format!(
                "index column_len {} != data len {}",
                self.index.column_len(),
                self.data.len()
            ));
        }
        for piece in self.index.iter_pieces() {
            for (i, e) in self.data[piece.start..piece.end].iter().enumerate() {
                let k = e.key();
                if let Some(lo) = piece.lo_key {
                    if k < lo {
                        return Err(format!(
                            "key {k} at {} below piece bound {lo}",
                            piece.start + i
                        ));
                    }
                }
                if let Some(hi) = piece.hi_key {
                    if k >= hi {
                        return Err(format!(
                            "key {k} at {} not below piece bound {hi}",
                            piece.start + i
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Discards the cracker index (and its cost counters) and restarts
    /// from the column's current physical data — the quarantine ladder's
    /// rebuild step. The data multiset is exactly preserved (cracking
    /// only ever swaps within the array), so answers over the rebuilt
    /// column are bit-identical to answers over the old one; what is
    /// lost is the earned crack structure, which subsequent queries
    /// re-earn adaptively. Any planned fault is disarmed: the faulted
    /// unit has been replaced.
    ///
    /// The rebuilt column is bit-identical (state, answers and future
    /// [`Stats`]) to a fresh `CrackedColumn::new` over the same data —
    /// the determinism property `tests` pin across every factory engine.
    pub fn quarantine_rebuild(&mut self) {
        let data = std::mem::take(&mut self.data);
        let config = CrackConfig {
            fault: crate::fault::FaultPlan::disabled(),
            ..self.config
        };
        *self = CrackedColumn::new(data, config);
    }

    /// Registers a crack, counting it only if it is new.
    fn register_crack(&mut self, key: u64, pos: usize) {
        // The fault site: physical reorganization has run, the index has
        // not yet heard about it — the worst place to die or stall.
        if self.fault.poll(FaultKind::PanicInKernel) {
            fault::fire_panic("kernel: crack partition complete, index not updated");
        }
        if self.fault.poll(FaultKind::DelayInCrack) {
            fault::spin_delay(self.fault.plan().delay_units());
        }
        let before = self.index.crack_count();
        self.index.add_crack(key, pos);
        if self.index.crack_count() > before {
            self.stats.cracks += 1;
        }
    }

    /// Completes any in-flight progressive partition of the piece
    /// containing `key`.
    ///
    /// Progressive jobs describe a half-finished physical layout; every
    /// *other* reorganization of that piece must first bring it to a
    /// consistent state, otherwise the job's cursors go stale. Settling
    /// simply runs the job to completion with an unlimited budget (its
    /// remaining work was already paid for proportionally by the queries
    /// that created it), which also registers its crack. No-op for pieces
    /// without a job — the common case for every non-progressive engine.
    fn settle_job_at(&mut self, key: u64) {
        let piece = self.index.piece_containing(key);
        let Some(mut job) = self.index.piece_meta_mut(&piece).job.take() else {
            return;
        };
        let mut sink = Vec::new();
        match advance_job(
            &mut self.data,
            &mut job,
            u64::MAX,
            Fringe::None,
            &mut sink,
            &mut self.stats,
        ) {
            JobStatus::Done { crack_pos } => {
                if crack_pos > piece.start && crack_pos < piece.end {
                    self.register_crack(job.pivot, crack_pos);
                }
            }
            JobStatus::InProgress => unreachable!("unlimited budget always completes"),
        }
    }

    /// Completes every in-flight progressive partition job.
    ///
    /// The Ripple update paths shift elements across piece boundaries,
    /// which would invalidate job cursors; merging pending updates into a
    /// progressive engine therefore settles all jobs first. Cheap when no
    /// jobs exist (one pass over the piece directory, the common case for
    /// every non-progressive engine).
    pub fn settle_all_jobs(&mut self) {
        // Collect one in-range key per job-holding piece first: settling
        // registers cracks, which would invalidate a live piece iterator.
        let keys: Vec<u64> = self
            .index
            .iter_pieces()
            .filter(|p| self.index.piece_meta(p).job.is_some())
            .map(|p| p.lo_key.unwrap_or(0))
            .collect();
        for key in keys {
            self.settle_job_at(key);
        }
        debug_assert!(!self.has_active_jobs());
    }

    // ------------------------------------------------------------------
    // Original cracking
    // ------------------------------------------------------------------

    /// Standard crack on one bound: ensures a crack at `key` exists,
    /// partitioning only the piece that currently contains `key`.
    pub fn crack_on(&mut self, key: u64) -> usize {
        self.settle_job_at(key);
        let piece = self.index.piece_containing(key);
        if piece.lo_key == Some(key) {
            // The boundary already exists; nothing to touch.
            return piece.start;
        }
        let kernel = self.config.kernel;
        let rel = crack_in_two_policy(
            &mut self.data[piece.start..piece.end],
            key,
            kernel,
            &mut self.stats,
        );
        let pos = piece.start + rel;
        self.register_crack(key, pos);
        pos
    }

    /// Original cracking select: crack on both bounds, answer with a view.
    ///
    /// When both bounds fall strictly inside the same piece the column is
    /// split in one three-way pass (Fig. 1, Q1); otherwise each bound
    /// cracks its own piece (Fig. 1, Q2: "at most two end pieces per
    /// query", §3).
    pub fn select_original(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.stats.queries += 1;
        if q.is_empty() {
            return QueryOutput::empty();
        }
        self.original_select_inner(q)
    }

    /// `select_original` without the query-counter bump, shared with the
    /// selective engines' original-cracking path.
    fn original_select_inner(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.settle_job_at(q.low);
        self.settle_job_at(q.high);
        let pa = self.index.piece_containing(q.low);
        let pb = self.index.piece_containing(q.high);
        if pa == pb && pa.lo_key != Some(q.low) && q.high < pa.hi_key.unwrap_or(u64::MAX) {
            let kernel = self.config.kernel;
            let (r1, r2) = crack_in_three_policy(
                &mut self.data[pa.start..pa.end],
                q.low,
                q.high,
                kernel,
                &mut self.stats,
            );
            let (lo, hi) = (pa.start + r1, pa.start + r2);
            self.register_crack(q.low, lo);
            self.register_crack(q.high, hi);
            QueryOutput::view(lo, hi)
        } else {
            let lo = self.crack_on(q.low);
            let hi = self.crack_on(q.high);
            QueryOutput::view(lo, hi)
        }
    }

    // ------------------------------------------------------------------
    // DDC / DDR / DD1C / DD1R (auxiliary cracks + final bound crack)
    // ------------------------------------------------------------------

    /// DDC crack (Fig. 4): recursively halve the piece containing `key` at
    /// its positional median (introselect) while it exceeds `CRACK_SIZE`,
    /// then crack on `key`.
    pub fn ddc_crack(&mut self, key: u64) -> usize {
        self.data_driven_crack::<rand::rngs::SmallRng>(key, true, None)
    }

    /// DDR crack: like DDC but each auxiliary split pivots on the key of a
    /// uniformly random element of the piece ("a single-branch quicksort").
    pub fn ddr_crack<R: Rng>(&mut self, key: u64, rng: &mut R) -> usize {
        self.data_driven_crack(key, true, Some(rng))
    }

    /// DD1C crack: at most one median split, then crack on `key`.
    pub fn dd1c_crack(&mut self, key: u64) -> usize {
        self.data_driven_crack::<rand::rngs::SmallRng>(key, false, None)
    }

    /// DD1R crack: at most one random split, then crack on `key`.
    pub fn dd1r_crack<R: Rng>(&mut self, key: u64, rng: &mut R) -> usize {
        self.data_driven_crack(key, false, Some(rng))
    }

    /// Shared driver for the DD* family.
    ///
    /// `recursive` distinguishes DDC/DDR (Fig. 4's `while`) from
    /// DD1C/DD1R (`if`). A supplied `rng` selects random pivots (the `R`
    /// variants); `None` selects positional medians via introselect (the
    /// `C` — center — variants).
    fn data_driven_crack<R: Rng>(
        &mut self,
        key: u64,
        recursive: bool,
        mut rng: Option<&mut R>,
    ) -> usize {
        self.settle_job_at(key);
        let piece = self.index.piece_containing(key);
        if piece.lo_key == Some(key) {
            return piece.start;
        }
        let crack_size = self.crack_size();
        let kernel = self.config.kernel;
        let (mut lo, mut hi) = (piece.start, piece.end);
        while hi - lo > crack_size {
            let (pos, pivot) = match rng.as_deref_mut() {
                Some(rng) => {
                    let pivot = self.data[rng.gen_range(lo..hi)].key();
                    let rel =
                        crack_in_two_policy(&mut self.data[lo..hi], pivot, kernel, &mut self.stats);
                    (lo + rel, pivot)
                }
                None => {
                    let (rel, pivot) =
                        median_partition_policy(&mut self.data[lo..hi], kernel, &mut self.stats);
                    (lo + rel, pivot)
                }
            };
            if pos == lo || pos == hi {
                // Degenerate split (e.g. duplicate-heavy piece or an
                // unlucky extreme pivot): no progress on this side; stop
                // recursing and fall through to the bound crack.
                break;
            }
            self.register_crack(pivot, pos);
            if key < pivot {
                hi = pos;
            } else {
                lo = pos;
            }
            if !recursive {
                break;
            }
        }
        let rel = crack_in_two_policy(&mut self.data[lo..hi], key, kernel, &mut self.stats);
        let pos = lo + rel;
        self.register_crack(key, pos);
        pos
    }

    /// Generic two-bound select through one of the DD* crack functions.
    pub fn select_with(
        &mut self,
        q: QueryRange,
        mut crack: impl FnMut(&mut Self, u64) -> usize,
    ) -> QueryOutput<E> {
        self.stats.queries += 1;
        if q.is_empty() {
            return QueryOutput::empty();
        }
        let lo = crack(self, q.low);
        let hi = crack(self, q.high);
        QueryOutput::view(lo, hi)
    }

    // ------------------------------------------------------------------
    // MDD1R (Fig. 5/6)
    // ------------------------------------------------------------------

    /// MDD1R select: never cracks on the query bounds; instead performs
    /// one random-pivot crack per end piece, materializing the qualifying
    /// fringe tuples during the same pass, and returns the fully covered
    /// middle as a view.
    pub fn mdd1r_select(&mut self, q: QueryRange, rng: &mut impl Rng) -> QueryOutput<E> {
        self.stats.queries += 1;
        let mut out = QueryOutput::empty();
        if q.is_empty() {
            return out;
        }
        self.settle_job_at(q.low);
        self.settle_job_at(q.high);
        let p1 = self.index.piece_containing(q.low);
        let p2 = self.index.piece_containing(q.high);
        if p1 == p2 {
            if let Some(fringe) = Self::single_piece_fringe(&p1, q) {
                self.stochastic_fringe(&p1, fringe, rng, &mut out);
            } else {
                // The query exactly covers the piece: pure view, no
                // materialization, no crack ("we avoid materialization
                // altogether when a query exactly matches a piece").
                out.push_view(p1.start, p1.end);
            }
            return out;
        }
        // Left fringe.
        let view_start = if p1.lo_key == Some(q.low) {
            p1.start // the whole piece qualifies; absorb it into the view
        } else {
            self.stochastic_fringe(&p1, Fringe::Low(q.low), rng, &mut out);
            p1.end
        };
        // Right fringe. If `q.high` is an existing boundary, p2 starts at
        // it and holds no qualifying tuples.
        let view_end = if p2.lo_key == Some(q.high) {
            p2.start
        } else {
            self.stochastic_fringe(&p2, Fringe::High(q.high), rng, &mut out);
            p2.start
        };
        out.push_view(view_start, view_end);
        out
    }

    /// The filter needed when both bounds fall in the same piece, or
    /// `None` if the query exactly matches the piece (no work needed).
    fn single_piece_fringe(piece: &Piece, q: QueryRange) -> Option<Fringe> {
        let low_is_boundary = piece.lo_key == Some(q.low);
        let high_is_boundary = piece.hi_key == Some(q.high);
        match (low_is_boundary, high_is_boundary) {
            (true, true) => None,
            (true, false) => Some(Fringe::High(q.high)),
            (false, true) => Some(Fringe::Low(q.low)),
            (false, false) => Some(Fringe::Both(q)),
        }
    }

    /// One random crack + integrated materialization over `piece`.
    fn stochastic_fringe(
        &mut self,
        piece: &Piece,
        fringe: Fringe,
        rng: &mut impl Rng,
        out: &mut QueryOutput<E>,
    ) {
        if piece.len() < 2 {
            // Nothing to split; just filter the (≤1) element.
            scan_filter_policy(
                &self.data[piece.start..piece.end],
                fringe,
                self.config.kernel,
                out.mat_mut(),
                &mut self.stats,
            );
            return;
        }
        let pivot = self.data[piece.start + rng.gen_range(0..piece.len())].key();
        let rel = split_and_materialize(
            &mut self.data[piece.start..piece.end],
            pivot,
            fringe,
            out.mat_mut(),
            &mut self.stats,
        );
        if rel > 0 && rel < piece.len() {
            self.register_crack(pivot, piece.start + rel);
        }
    }

    // ------------------------------------------------------------------
    // Data-driven midpoint family (DDM / DD1M / MDD1M)
    // ------------------------------------------------------------------

    /// The cached key-domain span, computed on first use (see the
    /// `domain` field for the staleness contract).
    fn domain_span(&mut self) -> Option<(u64, u64)> {
        if self.domain.is_none() {
            self.domain = self.key_span();
        }
        self.domain
    }

    /// Key-space bounds `[klo, khi)` of `piece`: its crack bounds where
    /// they exist, the cached column domain where they don't (head/tail
    /// pieces). `khi` is exclusive, so an unbounded tail uses
    /// `max_key + 1`. `None` when the range is empty — possible for a
    /// head/tail piece whose domain-derived bound has gone stale after
    /// updates, in which case callers skip the midpoint split and fall
    /// back to predicate cracking (still correct, just unsplit).
    fn piece_key_bounds(&mut self, piece: &Piece) -> Option<(u64, u64)> {
        let (dlo, dhi) = self.domain_span()?;
        let klo = piece.lo_key.unwrap_or(dlo);
        let khi = piece.hi_key.unwrap_or_else(|| dhi.saturating_add(1));
        (khi > klo).then_some((klo, khi))
    }

    /// The key-space midpoint of `[klo, khi)`, or `None` when the range
    /// holds fewer than two keys (nothing strictly inside to split on).
    fn midpoint(klo: u64, khi: u64) -> Option<u64> {
        (khi - klo >= 2).then(|| klo + (khi - klo) / 2)
    }

    /// DDM crack: recursive key-space midpoint splits down to
    /// `CRACK_SIZE`, then crack on `key`.
    ///
    /// The data-driven analogue of the DDC/DDR drivers with the pivot
    /// *rule* swapped: instead of a random element or positional median
    /// (both functions of the data), the piece's **key range** is halved.
    /// Two consequences: the split schedule converges toward the same
    /// balanced partition tree regardless of query order — sequential and
    /// skewed workloads cannot degenerate it — and the family needs no
    /// RNG, so replay is bit-identical by construction. A midpoint split
    /// that lands on a piece edge (empty half) still halves the key
    /// range, so the loop keeps narrowing — at most 64 halvings — where
    /// the value-pivot variants must break.
    pub fn ddm_crack(&mut self, key: u64) -> usize {
        self.midpoint_crack(key, true)
    }

    /// DD1M crack: at most one midpoint split, then crack on `key`.
    pub fn dd1m_crack(&mut self, key: u64) -> usize {
        self.midpoint_crack(key, false)
    }

    /// Shared driver for DDM/DD1M, mirroring [`Self::data_driven_crack`].
    fn midpoint_crack(&mut self, key: u64, recursive: bool) -> usize {
        self.settle_job_at(key);
        let piece = self.index.piece_containing(key);
        if piece.lo_key == Some(key) {
            return piece.start;
        }
        let crack_size = self.crack_size();
        let kernel = self.config.kernel;
        let (mut lo, mut hi) = (piece.start, piece.end);
        let mut bounds = self.piece_key_bounds(&piece);
        while hi - lo > crack_size {
            let Some((klo, khi)) = bounds else { break };
            let Some(pivot) = Self::midpoint(klo, khi) else {
                break; // key range exhausted (duplicate-heavy piece)
            };
            let rel = crack_in_two_policy(&mut self.data[lo..hi], pivot, kernel, &mut self.stats);
            let pos = lo + rel;
            // Registered even when degenerate (pos == lo or pos == hi):
            // an empty-sided crack is still globally valid — the partition
            // just ran, and everything outside [lo, hi) is bounded by the
            // enclosing cracks — and recording it is what lets the next
            // query skip straight to the narrowed half.
            self.register_crack(pivot, pos);
            if key < pivot {
                hi = pos;
                bounds = Some((klo, pivot));
            } else {
                lo = pos;
                bounds = Some((pivot, khi));
            }
            if !recursive {
                break;
            }
        }
        let rel = crack_in_two_policy(&mut self.data[lo..hi], key, kernel, &mut self.stats);
        let pos = lo + rel;
        self.register_crack(key, pos);
        pos
    }

    /// MDD1M select: the MDD1R query shape — never cracks on the query
    /// bounds; one auxiliary crack per end piece with integrated fringe
    /// materialization; exact-match pieces answered as pure views — with
    /// the random pivot replaced by the piece's key-space midpoint.
    ///
    /// Fully deterministic: physical state depends on *which* pieces
    /// queries touch, never on the query values themselves, and there is
    /// no RNG anywhere. Midpoints halve a touched piece's key range no
    /// matter where the query landed inside it, which is the property the
    /// paper buys with randomness.
    pub fn mdd1m_select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.stats.queries += 1;
        let mut out = QueryOutput::empty();
        if q.is_empty() {
            return out;
        }
        self.settle_job_at(q.low);
        self.settle_job_at(q.high);
        let p1 = self.index.piece_containing(q.low);
        let p2 = self.index.piece_containing(q.high);
        if p1 == p2 {
            if let Some(fringe) = Self::single_piece_fringe(&p1, q) {
                self.midpoint_fringe(&p1, fringe, &mut out);
            } else {
                out.push_view(p1.start, p1.end);
            }
            return out;
        }
        let view_start = if p1.lo_key == Some(q.low) {
            p1.start
        } else {
            self.midpoint_fringe(&p1, Fringe::Low(q.low), &mut out);
            p1.end
        };
        let view_end = if p2.lo_key == Some(q.high) {
            p2.start
        } else {
            self.midpoint_fringe(&p2, Fringe::High(q.high), &mut out);
            p2.start
        };
        out.push_view(view_start, view_end);
        out
    }

    /// One midpoint crack + integrated materialization over `piece` —
    /// [`Self::stochastic_fringe`] with the pivot rule swapped.
    fn midpoint_fringe(&mut self, piece: &Piece, fringe: Fringe, out: &mut QueryOutput<E>) {
        let pivot = self
            .piece_key_bounds(piece)
            .and_then(|(klo, khi)| Self::midpoint(klo, khi));
        let pivot = match pivot {
            Some(p) if piece.len() >= 2 => p,
            // Nothing to split (singleton piece, or a key range with no
            // interior): just filter the piece.
            _ => {
                scan_filter_policy(
                    &self.data[piece.start..piece.end],
                    fringe,
                    self.config.kernel,
                    out.mat_mut(),
                    &mut self.stats,
                );
                return;
            }
        };
        let rel = split_and_materialize(
            &mut self.data[piece.start..piece.end],
            pivot,
            fringe,
            out.mat_mut(),
            &mut self.stats,
        );
        // Unlike the random-pivot fringe, degenerate splits ARE
        // registered: an empty-sided crack halves the piece's key range,
        // which is exactly what guarantees convergence here.
        self.register_crack(pivot, piece.start + rel);
    }

    // ------------------------------------------------------------------
    // Selective stochastic cracking (per-piece decisions)
    // ------------------------------------------------------------------

    /// A select that decides *per touched piece* whether to apply a
    /// stochastic crack (MDD1R-style) or original cracking.
    ///
    /// `use_stochastic` receives each end piece and its mutable state; it
    /// both makes the decision and maintains any policy state (e.g. the
    /// ScrackMon crack counters). This is the engine room of the paper's
    /// Selective Stochastic Cracking variants (§4, Figs. 17–19); the
    /// per-query policies (FiftyFifty, FlipCoin) are the special case of a
    /// constant decision.
    pub fn selective_select(
        &mut self,
        q: QueryRange,
        rng: &mut impl Rng,
        mut use_stochastic: impl FnMut(&Piece, &mut PieceState) -> bool,
    ) -> QueryOutput<E> {
        self.stats.queries += 1;
        let mut out = QueryOutput::empty();
        if q.is_empty() {
            return out;
        }
        self.settle_job_at(q.low);
        self.settle_job_at(q.high);
        let p1 = self.index.piece_containing(q.low);
        let p2 = self.index.piece_containing(q.high);
        if p1 == p2 {
            return match Self::single_piece_fringe(&p1, q) {
                None => QueryOutput::view(p1.start, p1.end),
                Some(fringe) => {
                    if use_stochastic(&p1, self.index.piece_meta_mut(&p1)) {
                        self.stochastic_fringe(&p1, fringe, rng, &mut out);
                        out
                    } else {
                        self.original_select_inner(q)
                    }
                }
            };
        }
        let view_start = if p1.lo_key == Some(q.low) {
            p1.start
        } else if use_stochastic(&p1, self.index.piece_meta_mut(&p1)) {
            self.stochastic_fringe(&p1, Fringe::Low(q.low), rng, &mut out);
            p1.end
        } else {
            // Original cracking on the low bound: the qualifying suffix of
            // p1 becomes contiguous with the middle.
            self.crack_on(q.low)
        };
        let view_end = if p2.lo_key == Some(q.high) {
            p2.start
        } else if use_stochastic(&p2, self.index.piece_meta_mut(&p2)) {
            self.stochastic_fringe(&p2, Fringe::High(q.high), rng, &mut out);
            p2.start
        } else {
            self.crack_on(q.high)
        };
        out.push_view(view_start, view_end);
        out
    }

    // ------------------------------------------------------------------
    // Progressive stochastic cracking (PMDD1R)
    // ------------------------------------------------------------------

    /// PMDD1R select: MDD1R whose random cracks complete across multiple
    /// queries, each performing at most `swap_pct`% of the piece size in
    /// swaps. Pieces at or below the L2 threshold take the full MDD1R
    /// path. `P100%` behaves identically to MDD1R.
    pub fn pmdd1r_select(
        &mut self,
        q: QueryRange,
        swap_pct: f64,
        rng: &mut impl Rng,
    ) -> QueryOutput<E> {
        self.stats.queries += 1;
        let mut out = QueryOutput::empty();
        if q.is_empty() {
            return out;
        }
        let p1 = self.index.piece_containing(q.low);
        let p2 = self.index.piece_containing(q.high);
        if p1 == p2 {
            if let Some(fringe) = Self::single_piece_fringe(&p1, q) {
                self.progressive_fringe(&p1, fringe, swap_pct, rng, &mut out);
            } else {
                out.push_view(p1.start, p1.end);
            }
            return out;
        }
        let view_start = if p1.lo_key == Some(q.low) {
            p1.start
        } else {
            self.progressive_fringe(&p1, Fringe::Low(q.low), swap_pct, rng, &mut out);
            p1.end
        };
        let view_end = if p2.lo_key == Some(q.high) {
            p2.start
        } else {
            self.progressive_fringe(&p2, Fringe::High(q.high), swap_pct, rng, &mut out);
            p2.start
        };
        out.push_view(view_start, view_end);
        out
    }

    /// Fringe handling with a swap budget: resume (or start) the piece's
    /// partition job; answer the query exactly regardless of how far the
    /// job got.
    fn progressive_fringe(
        &mut self,
        piece: &Piece,
        fringe: Fringe,
        swap_pct: f64,
        rng: &mut impl Rng,
        out: &mut QueryOutput<E>,
    ) {
        let threshold = self.config.progressive_threshold(std::mem::size_of::<E>());
        let has_job = self.index.piece_meta(piece).job.is_some();
        if piece.len() <= threshold && !has_job {
            // Small piece: full MDD1R takes over ("otherwise, we prefer to
            // perform cracking as usual so as to reap the benefits of fast
            // convergence", §4).
            self.stochastic_fringe(piece, fringe, rng, out);
            return;
        }
        let budget = ((piece.len() as f64 * swap_pct / 100.0).ceil() as u64).max(1);
        let mut job = match self.index.piece_meta_mut(piece).job.take() {
            Some(job) => job,
            None => {
                let pivot = self.data[piece.start + rng.gen_range(0..piece.len())].key();
                PartitionJob::new(pivot, piece.start, piece.end)
            }
        };
        let kernel = self.config.kernel;
        // 1. The regions settled by previous queries still need filtering
        //    for *this* query's result.
        scan_filter_policy(
            &self.data[piece.start..job.l],
            fringe,
            kernel,
            out.mat_mut(),
            &mut self.stats,
        );
        scan_filter_policy(
            &self.data[job.r..piece.end],
            fringe,
            kernel,
            out.mat_mut(),
            &mut self.stats,
        );
        // 2. Advance the partition within budget, filtering what it visits.
        match advance_job(
            &mut self.data,
            &mut job,
            budget,
            fringe,
            out.mat_mut(),
            &mut self.stats,
        ) {
            JobStatus::Done { crack_pos } => {
                if crack_pos > piece.start && crack_pos < piece.end {
                    self.register_crack(job.pivot, crack_pos);
                }
                // A degenerate pivot (crack at the piece edge) simply
                // leaves the piece unsplit; the next query draws a new one.
            }
            JobStatus::InProgress => {
                // 3. The untouched middle still holds unfiltered tuples.
                scan_filter_policy(
                    &self.data[job.l..job.r],
                    fringe,
                    kernel,
                    out.mat_mut(),
                    &mut self.stats,
                );
                self.index.piece_meta_mut(piece).job = Some(job);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn permuted(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 7919) % n).collect()
    }

    fn column(n: u64) -> CrackedColumn<u64> {
        CrackedColumn::new(permuted(n), CrackConfig::default())
    }

    fn column_with(n: u64, crack_size: usize) -> CrackedColumn<u64> {
        CrackedColumn::new(
            permuted(n),
            CrackConfig::default()
                .with_crack_size(crack_size)
                .with_progressive_threshold(crack_size * 4),
        )
    }

    #[test]
    fn crack_on_establishes_partition_and_index_entry() {
        let mut col = column(1000);
        let p = col.crack_on(400);
        assert_eq!(p, 400, "unique dense keys: boundary position == key");
        assert!(col.data()[..p].iter().all(|k| *k < 400));
        assert!(col.data()[p..].iter().all(|k| *k >= 400));
        assert_eq!(col.index().crack_count(), 1);
        col.check_integrity().unwrap();
    }

    #[test]
    fn crack_on_existing_boundary_is_free() {
        let mut col = column(1000);
        col.crack_on(400);
        let before = col.stats();
        let p = col.crack_on(400);
        assert_eq!(p, 400);
        let delta = col.stats().since(&before);
        assert_eq!(delta.touched, 0, "repeat crack must touch nothing");
        assert_eq!(col.index().crack_count(), 1);
    }

    #[test]
    fn select_original_same_piece_uses_single_pass() {
        let mut col = column(1000);
        let out = col.select_original(QueryRange::new(300, 500));
        assert_eq!(out.len(), 200);
        assert_eq!(out.views().len(), 1);
        // One three-way pass: the whole column touched exactly once, plus
        // the relocation re-examinations; well below two full passes.
        assert!(col.stats().touched < 2 * 1000);
        assert_eq!(col.index().crack_count(), 2);
        col.check_integrity().unwrap();
    }

    #[test]
    fn select_original_across_pieces_cracks_two_end_pieces() {
        let mut col = column(1000);
        col.select_original(QueryRange::new(300, 500)); // pieces at 300, 500
        let before = col.stats();
        // Query spanning the middle piece: only the two end pieces are
        // analyzed (paper §3: "at most two end pieces per query").
        let out = col.select_original(QueryRange::new(200, 600));
        assert_eq!(out.len(), 400);
        let delta = col.stats().since(&before);
        assert!(
            delta.touched <= 300 + 500,
            "only the end pieces may be touched, got {}",
            delta.touched
        );
        col.check_integrity().unwrap();
    }

    #[test]
    fn mdd1r_never_cracks_on_query_bounds() {
        let mut col = column_with(10_000, 64);
        let mut rng = SmallRng::seed_from_u64(5);
        for i in 0..50u64 {
            let a = (i * 190) % 9_500;
            let _ = col.mdd1r_select(QueryRange::new(a, a + 200), &mut rng);
        }
        // No crack value may equal any query bound (probability ~0 for a
        // random pivot to hit a bound exactly is nonzero but the dense
        // permutation and seeds here avoid it; the structural check is
        // that cracks came from data-driven pivots, not from bounds).
        let bound_cracks = col
            .index()
            .iter_cracks()
            .filter(|(k, _, _)| k % 190 == 0 || (k + 200) % 190 == 0)
            .count();
        let total = col.index().crack_count();
        assert!(
            bound_cracks < total / 2,
            "suspiciously many cracks on bounds: {bound_cracks}/{total}"
        );
        col.check_integrity().unwrap();
    }

    #[test]
    fn mdd1r_exact_piece_match_is_pure_view() {
        let mut col = column(1000);
        // Create boundaries at 300 and 500 with original cracking.
        col.crack_on(300);
        col.crack_on(500);
        let before = col.stats();
        let mut rng = SmallRng::seed_from_u64(5);
        let out = col.mdd1r_select(QueryRange::new(300, 500), &mut rng);
        assert_eq!(out.len(), 200);
        assert!(out.mat().is_empty(), "exact match must not materialize");
        let delta = col.stats().since(&before);
        assert_eq!(delta.touched, 0, "exact match must not touch data");
    }

    #[test]
    fn mdd1r_fringe_materialization_plus_view() {
        let mut col = column(1000);
        col.crack_on(300);
        col.crack_on(500);
        let mut rng = SmallRng::seed_from_u64(5);
        // Bounds fall inside the first and last pieces; middle is a view.
        let out = col.mdd1r_select(QueryRange::new(100, 800), &mut rng);
        assert_eq!(out.len(), 700);
        assert!(!out.mat().is_empty(), "fringes must be materialized");
        assert_eq!(out.views().len(), 1, "middle must be a single view");
        let view_len: usize = out.views().iter().map(|(s, e)| e - s).sum();
        assert!(view_len >= 200, "view must cover at least [300,500)");
        col.check_integrity().unwrap();
    }

    #[test]
    fn ddc_halves_large_pieces_before_bound_crack() {
        let mut col = column_with(4096, 256);
        col.ddc_crack(10);
        // Median cracks at 2048, 1024, 512, 256(ish) + the bound crack.
        let cracks: Vec<u64> = col.index().iter_cracks().map(|(k, _, _)| k).collect();
        assert!(
            cracks.contains(&2048),
            "first median split missing: {cracks:?}"
        );
        assert!(cracks.contains(&1024), "second median split missing");
        assert!(cracks.contains(&10), "bound crack missing");
        assert!(col.index().crack_count() >= 4);
        col.check_integrity().unwrap();
    }

    #[test]
    fn dd1c_adds_exactly_one_auxiliary_crack() {
        let mut col = column_with(4096, 256);
        col.dd1c_crack(10);
        // One median crack + one bound crack.
        assert_eq!(col.index().crack_count(), 2);
        let cracks: Vec<u64> = col.index().iter_cracks().map(|(k, _, _)| k).collect();
        assert_eq!(cracks, vec![10, 2048]);
    }

    #[test]
    fn dd_family_skips_auxiliary_cracks_below_threshold() {
        let mut col = column_with(100, 256); // whole column below CRACK_SIZE
        let mut rng = SmallRng::seed_from_u64(5);
        col.ddc_crack(10);
        col.ddr_crack(20, &mut rng);
        col.dd1c_crack(30);
        col.dd1r_crack(40, &mut rng);
        // Only the four bound cracks; no auxiliary work.
        assert_eq!(col.index().crack_count(), 4);
        col.check_integrity().unwrap();
    }

    #[test]
    fn pmdd1r_budget_spreads_one_crack_over_queries() {
        let n = 100_000u64;
        let mut col = CrackedColumn::new(
            permuted(n),
            CrackConfig::default()
                .with_crack_size(64)
                .with_progressive_threshold(1_000),
        );
        let mut rng = SmallRng::seed_from_u64(5);
        let q = QueryRange::new(1_000, 1_100);
        let out = col.pmdd1r_select(q, 1.0, &mut rng);
        assert_eq!(out.len(), 100);
        assert!(col.has_active_jobs(), "1% budget cannot finish 100k swaps");
        assert_eq!(col.index().crack_count(), 0, "crack lands only when done");
        // Swaps capped at ~1% of the piece (one fringe piece = whole col).
        assert!(
            col.stats().swaps <= n / 100 + 2,
            "swaps {}",
            col.stats().swaps
        );
        // Repeating the query finishes the job eventually.
        let mut rounds = 0;
        while col.has_active_jobs() {
            let out = col.pmdd1r_select(q, 1.0, &mut rng);
            assert_eq!(out.len(), 100, "every round answers exactly");
            rounds += 1;
            assert!(rounds < 200, "job must complete");
        }
        assert!(
            col.index().crack_count() >= 1,
            "completed job registered its crack"
        );
        assert!(
            rounds > 5,
            "a 1% budget must need many rounds, took {rounds}"
        );
        col.check_integrity().unwrap();
    }

    #[test]
    fn pmdd1r_small_pieces_take_full_mdd1r_path() {
        let mut col = column_with(500, 64); // threshold = 256 > piece? n=500 > 256
        let mut rng = SmallRng::seed_from_u64(5);
        // First query on a big piece starts progressive; but a piece below
        // the threshold must be cracked in one go.
        let _ = col.pmdd1r_select(QueryRange::new(100, 120), 10.0, &mut rng);
        // Run until no jobs remain, then all further work is immediate.
        let mut rounds = 0;
        while col.has_active_jobs() && rounds < 100 {
            let _ = col.pmdd1r_select(QueryRange::new(100, 120), 10.0, &mut rng);
            rounds += 1;
        }
        assert!(!col.has_active_jobs());
        col.check_integrity().unwrap();
    }

    #[test]
    fn p100_equals_mdd1r_in_cracks_per_query() {
        let n = 10_000u64;
        let mut a = column_with(n, 64);
        let mut b = column_with(n, 64);
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut rng_b = SmallRng::seed_from_u64(9);
        for i in 0..30u64 {
            let lo = (i * 310) % 9_000;
            let q = QueryRange::new(lo, lo + 100);
            let out_a = a.mdd1r_select(q, &mut rng_a);
            let out_b = b.pmdd1r_select(q, 100.0, &mut rng_b);
            assert_eq!(out_a.len(), out_b.len(), "query {i}");
        }
        assert!(!b.has_active_jobs(), "P100% always completes in one query");
        a.check_integrity().unwrap();
        b.check_integrity().unwrap();
    }

    #[test]
    fn settle_makes_mixing_progressive_and_original_safe() {
        // Regression test for the proptest-found bug: a progressive job
        // followed by original cracking of the same piece.
        let mut col = column_with(1_000, 16);
        let mut rng = SmallRng::seed_from_u64(63);
        let _ = col.pmdd1r_select(QueryRange::new(0, 1), 10.0, &mut rng);
        assert!(col.has_active_jobs());
        col.crack_on(90);
        assert!(!col.has_active_jobs(), "crack_on must settle the job");
        col.check_integrity().unwrap();
        let _ = col.pmdd1r_select(QueryRange::new(0, 1), 10.0, &mut rng);
        col.check_integrity().unwrap();
        // And mixing with every other op keeps integrity too.
        col.ddc_crack(500);
        col.ddr_crack(700, &mut rng);
        let _ = col.mdd1r_select(QueryRange::new(40, 60), &mut rng);
        let _ = col.select_original(QueryRange::new(800, 900));
        col.check_integrity().unwrap();
    }

    #[test]
    fn selective_monitor_counts_and_resets() {
        let mut col = column_with(10_000, 64);
        let mut rng = SmallRng::seed_from_u64(5);
        // Threshold 2: first two cracks of a piece are original, third is
        // stochastic (which resets).
        let decide = |_: &Piece, meta: &mut PieceState| {
            if meta.crack_count >= 2 {
                meta.crack_count = 0;
                true
            } else {
                meta.crack_count += 1;
                false
            }
        };
        for i in 0..20u64 {
            let a = (i * 450) % 9_000;
            let out = col.selective_select(QueryRange::new(a, a + 100), &mut rng, decide);
            assert_eq!(out.len(), 100, "query {i}");
        }
        col.check_integrity().unwrap();
    }

    #[test]
    fn empty_query_costs_nothing() {
        let mut col = column(1000);
        let mut rng = SmallRng::seed_from_u64(5);
        let before = col.stats();
        assert!(col.select_original(QueryRange::new(5, 5)).is_empty());
        assert!(col.mdd1r_select(QueryRange::new(7, 3), &mut rng).is_empty());
        assert!(col
            .pmdd1r_select(QueryRange::new(0, 0), 10.0, &mut rng)
            .is_empty());
        let delta = col.stats().since(&before);
        assert_eq!(delta.touched, 0);
        assert_eq!(delta.cracks, 0);
    }

    #[test]
    fn bounds_beyond_domain_are_fine() {
        let mut col = column(1000);
        let out = col.select_original(QueryRange::new(990, 5_000));
        assert_eq!(out.len(), 10);
        let mut rng = SmallRng::seed_from_u64(5);
        let out = col.mdd1r_select(QueryRange::new(2_000, 3_000), &mut rng);
        assert!(out.is_empty());
        col.check_integrity().unwrap();
    }

    #[test]
    fn stats_track_query_count_per_select_flavor() {
        let mut col = column(1000);
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = col.select_original(QueryRange::new(1, 2));
        let _ = col.mdd1r_select(QueryRange::new(3, 4), &mut rng);
        let _ = col.pmdd1r_select(QueryRange::new(5, 6), 10.0, &mut rng);
        let _ = col.selective_select(QueryRange::new(7, 8), &mut rng, |_, _| true);
        let _ = col.select_with(QueryRange::new(9, 10), |c, k| c.crack_on(k));
        assert_eq!(col.stats().queries, 5);
    }
}
