//! The non-adaptive baselines: `Scan` and `Sort` (full index).

use crate::engine::Engine;
use scrack_columnstore::{Column, QueryOutput};
use scrack_partition::{introsort, lower_bound};
use scrack_types::{Element, QueryRange, Stats};

/// The plain scan baseline: no indexing ever; every query scans all `N`
/// tuples and materializes its result (§3).
#[derive(Debug, Clone)]
pub struct ScanEngine<E: Element> {
    column: Column<E>,
    stats: Stats,
}

impl<E: Element> ScanEngine<E> {
    /// Wraps `data` without reorganizing it.
    pub fn new(data: Vec<E>) -> Self {
        Self {
            column: Column::from_vec(data),
            stats: Stats::new(),
        }
    }
}

impl<E: Element> Engine<E> for ScanEngine<E> {
    fn name(&self) -> String {
        "Scan".into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.stats.queries += 1;
        let mut out = QueryOutput::empty();
        self.column.scan_select(q, out.mat_mut(), &mut self.stats);
        out
    }

    fn data(&self) -> &[E] {
        self.column.as_slice()
    }

    fn stats(&self) -> Stats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

/// The full-index baseline: the first query pays for a complete sort of
/// the column; every later query is two binary searches returning a view
/// (§3: "once the data is sorted with the first query, from then on
/// performance is extremely fast … the problem is that we overload the
/// first query").
#[derive(Debug, Clone)]
pub struct SortEngine<E: Element> {
    data: Vec<E>,
    sorted: bool,
    stats: Stats,
}

impl<E: Element> SortEngine<E> {
    /// Wraps `data`; sorting is deferred to the first select.
    pub fn new(data: Vec<E>) -> Self {
        Self {
            data,
            sorted: false,
            stats: Stats::new(),
        }
    }

    /// Whether the one-off sort has happened yet.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }
}

impl<E: Element> Engine<E> for SortEngine<E> {
    fn name(&self) -> String {
        "Sort".into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.stats.queries += 1;
        if !self.sorted {
            introsort(&mut self.data, &mut self.stats);
            self.sorted = true;
        }
        if q.is_empty() {
            return QueryOutput::empty();
        }
        let lo = lower_bound(&self.data, q.low, &mut self.stats);
        let hi = lower_bound(&self.data, q.high, &mut self.stats);
        QueryOutput::view(lo, hi)
    }

    fn data(&self) -> &[E] {
        &self.data
    }

    fn stats(&self) -> Stats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;

    fn keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 809) % n).collect()
    }

    #[test]
    fn scan_matches_oracle() {
        let data = keys(500);
        let oracle = Oracle::new(&data);
        let mut eng = ScanEngine::new(data);
        for (a, b) in [(0u64, 500u64), (10, 42), (499, 1000), (5, 5)] {
            let q = QueryRange::new(a, b);
            let out = eng.select(q);
            assert_eq!(out.len(), oracle.count(q));
            assert_eq!(out.keys_sorted(eng.data()), oracle.keys(q));
        }
    }

    #[test]
    fn sort_pays_once_then_views() {
        let data = keys(1000);
        let oracle = Oracle::new(&data);
        let mut eng = SortEngine::new(data);
        assert!(!eng.is_sorted());
        let q = QueryRange::new(100, 120);
        let out = eng.select(q);
        assert!(eng.is_sorted());
        assert_eq!(out.keys_sorted(eng.data()), oracle.keys(q));
        let touched_after_first = eng.stats().touched;
        // Subsequent queries only binary-search: few touches.
        for a in (0..900).step_by(100) {
            let q = QueryRange::new(a, a + 10);
            let out = eng.select(q);
            assert_eq!(out.keys_sorted(eng.data()), oracle.keys(q));
            assert!(out.mat().is_empty(), "sort answers with pure views");
        }
        assert!(
            eng.stats().touched - touched_after_first < 1000,
            "post-sort queries must touch only O(log n) tuples each"
        );
    }

    #[test]
    fn scan_materializes_sort_does_not() {
        let data = keys(100);
        let q = QueryRange::new(10, 20);
        let mut scan = ScanEngine::new(data.clone());
        let out = scan.select(q);
        assert_eq!(out.mat().len(), out.len());
        let mut sort = SortEngine::new(data);
        let out = sort.select(q);
        assert!(out.mat().is_empty());
    }
}
