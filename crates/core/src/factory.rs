//! Engine construction by name: one entry point for experiments and tests.

use crate::baseline::{ScanEngine, SortEngine};
use crate::config::CrackConfig;
use crate::engine::Engine;
use crate::engines::{
    CrackEngine, Dd1cEngine, Dd1mEngine, Dd1rEngine, DdcEngine, DdmEngine, DdrEngine, Mdd1mEngine,
    Mdd1rEngine, ProgressiveEngine,
};
use crate::naive::RandomInjectEngine;
use crate::selective::{SelectiveEngine, SelectivePolicy};
use scrack_types::Element;

/// Every strategy evaluated in the paper, as a constructible description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineKind {
    /// Full scan, no indexing (§3).
    Scan,
    /// Full sort on the first query (§3).
    Sort,
    /// Original database cracking (§2–3).
    Crack,
    /// Data Driven Center, recursive (Fig. 4).
    Ddc,
    /// Data Driven Random, recursive.
    Ddr,
    /// One center crack then plain cracking.
    Dd1c,
    /// One random crack then plain cracking.
    Dd1r,
    /// Materializing DD1R (Fig. 5); the default "Scrack".
    Mdd1r,
    /// Data Driven Midpoint, recursive: key-space midpoint splits down to
    /// `CRACK_SIZE` (deterministic counterpart of DDC/DDR).
    Ddm,
    /// One midpoint crack then plain cracking.
    Dd1m,
    /// MDD1R's query shape with midpoint pivots: deterministic, never
    /// cracks on query bounds.
    Mdd1m,
    /// Progressive stochastic cracking with a swap budget in percent.
    Progressive {
        /// Percentage of the piece size allowed as swaps per query.
        swap_pct: u32,
    },
    /// Selective: stochastic every `x`-th query (x=2 is FiftyFifty).
    EveryX {
        /// The period.
        x: u32,
    },
    /// Selective: stochastic with probability 1/2 per query.
    FlipCoin,
    /// Selective: ScrackMon with the given counter threshold.
    Monitor {
        /// Crack-count threshold per piece.
        threshold: u32,
    },
    /// Selective: stochastic only above the L1 piece size.
    SizeThreshold,
    /// Naive: inject a random query every `every` user queries (Fig. 12).
    RandomInject {
        /// The injection period.
        every: u32,
    },
}

impl EngineKind {
    /// The paper's label for the strategy.
    pub fn label(&self) -> String {
        match self {
            EngineKind::Scan => "Scan".into(),
            EngineKind::Sort => "Sort".into(),
            EngineKind::Crack => "Crack".into(),
            EngineKind::Ddc => "DDC".into(),
            EngineKind::Ddr => "DDR".into(),
            EngineKind::Dd1c => "DD1C".into(),
            EngineKind::Dd1r => "DD1R".into(),
            EngineKind::Mdd1r => "MDD1R".into(),
            EngineKind::Ddm => "DDM".into(),
            EngineKind::Dd1m => "DD1M".into(),
            EngineKind::Mdd1m => "MDD1M".into(),
            EngineKind::Progressive { swap_pct } => format!("P{swap_pct}%"),
            EngineKind::EveryX { x } => SelectivePolicy::EveryX(*x).label(),
            EngineKind::FlipCoin => "FlipCoin".into(),
            EngineKind::Monitor { threshold } => format!("ScrackMon{threshold}"),
            EngineKind::SizeThreshold => "L1Switch".into(),
            EngineKind::RandomInject { every } => format!("R{every}crack"),
        }
    }

    /// The kinds exercised across the paper's figures, for sweep tests.
    pub fn paper_selection() -> Vec<EngineKind> {
        vec![
            EngineKind::Scan,
            EngineKind::Sort,
            EngineKind::Crack,
            EngineKind::Ddc,
            EngineKind::Ddr,
            EngineKind::Dd1c,
            EngineKind::Dd1r,
            EngineKind::Mdd1r,
            EngineKind::Progressive { swap_pct: 1 },
            EngineKind::Progressive { swap_pct: 10 },
            EngineKind::Progressive { swap_pct: 50 },
            EngineKind::Progressive { swap_pct: 100 },
            EngineKind::EveryX { x: 2 },
            EngineKind::FlipCoin,
            EngineKind::Monitor { threshold: 10 },
            EngineKind::SizeThreshold,
            EngineKind::RandomInject { every: 2 },
        ]
    }

    /// [`EngineKind::paper_selection`] plus the post-paper data-driven
    /// midpoint family (DDM/DD1M/MDD1M): everything the repo can build.
    /// Sweep tests, the update factory and the chooser's full config
    /// space enumerate this, so new kinds added here are picked up
    /// everywhere at once.
    pub fn extended_selection() -> Vec<EngineKind> {
        let mut kinds = Self::paper_selection();
        kinds.extend([EngineKind::Ddm, EngineKind::Dd1m, EngineKind::Mdd1m]);
        kinds
    }
}

/// Builds a boxed engine of the given kind over `data`.
///
/// `seed` feeds every randomized component, making runs reproducible.
pub fn build_engine<E: Element>(
    kind: EngineKind,
    data: Vec<E>,
    config: CrackConfig,
    seed: u64,
) -> Box<dyn Engine<E>> {
    match kind {
        EngineKind::Scan => Box::new(ScanEngine::new(data)),
        EngineKind::Sort => Box::new(SortEngine::new(data)),
        EngineKind::Crack => Box::new(CrackEngine::new(data, config)),
        EngineKind::Ddc => Box::new(DdcEngine::new(data, config)),
        EngineKind::Ddr => Box::new(DdrEngine::new(data, config, seed)),
        EngineKind::Dd1c => Box::new(Dd1cEngine::new(data, config)),
        EngineKind::Dd1r => Box::new(Dd1rEngine::new(data, config, seed)),
        EngineKind::Mdd1r => Box::new(Mdd1rEngine::new(data, config, seed)),
        EngineKind::Ddm => Box::new(DdmEngine::new(data, config)),
        EngineKind::Dd1m => Box::new(Dd1mEngine::new(data, config)),
        EngineKind::Mdd1m => Box::new(Mdd1mEngine::new(data, config)),
        EngineKind::Progressive { swap_pct } => Box::new(ProgressiveEngine::new(
            data,
            config,
            seed,
            f64::from(swap_pct),
        )),
        EngineKind::EveryX { x } => Box::new(SelectiveEngine::new(
            data,
            config,
            seed,
            SelectivePolicy::EveryX(x),
        )),
        EngineKind::FlipCoin => Box::new(SelectiveEngine::new(
            data,
            config,
            seed,
            SelectivePolicy::FlipCoin(0.5),
        )),
        EngineKind::Monitor { threshold } => Box::new(SelectiveEngine::new(
            data,
            config,
            seed,
            SelectivePolicy::Monitor(threshold),
        )),
        EngineKind::SizeThreshold => Box::new(SelectiveEngine::new(
            data,
            config,
            seed,
            SelectivePolicy::SizeThreshold,
        )),
        EngineKind::RandomInject { every } => {
            Box::new(RandomInjectEngine::new(data, config, seed, every))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(EngineKind::Progressive { swap_pct: 10 }.label(), "P10%");
        assert_eq!(EngineKind::RandomInject { every: 4 }.label(), "R4crack");
        assert_eq!(EngineKind::EveryX { x: 2 }.label(), "FiftyFifty");
        assert_eq!(EngineKind::Monitor { threshold: 50 }.label(), "ScrackMon50");
    }

    #[test]
    fn extended_selection_is_paper_selection_plus_midpoint_family() {
        let paper = EngineKind::paper_selection();
        let extended = EngineKind::extended_selection();
        assert_eq!(&extended[..paper.len()], &paper[..]);
        assert_eq!(
            &extended[paper.len()..],
            &[EngineKind::Ddm, EngineKind::Dd1m, EngineKind::Mdd1m]
        );
    }

    #[test]
    fn build_all_kinds() {
        let data: Vec<u64> = (0..100).collect();
        for kind in EngineKind::extended_selection() {
            let mut eng = build_engine(kind, data.clone(), CrackConfig::default(), 42);
            let out = eng.select(scrack_types::QueryRange::new(10, 20));
            assert_eq!(out.len(), 10, "{} wrong result size", eng.name());
        }
    }
}
