//! Tuning knobs shared by all cracking engines.

use crate::fault::FaultPlan;
use scrack_index::IndexPolicy;
use scrack_partition::KernelPolicy;
use scrack_types::CacheProfile;

/// How pending updates are merged into a cracked column.
///
/// Both policies implement the paper's §5 update model — updates queue on
/// arrival and a query pays only for the pending updates qualifying for
/// its range — and produce the **same multiset of tuples**, so per-query
/// answers are bit-identical under either (pinned by
/// `crates/updates/tests/prop.rs`). They differ in how the qualifying
/// batch is physically rippled in:
///
/// * [`UpdatePolicy::Batched`] (the default) — the **merge-ripple**: sort
///   the qualifying inserts/deletes once and apply them in a single
///   left-to-right (deletes) / right-to-left (inserts) boundary walk.
///   One index walk per *batch*: each crossed crack boundary is visited
///   once and shifted by the batch's cumulative size delta.
/// * [`UpdatePolicy::PerElement`] — the per-element Ripple of Idreos et
///   al. (SIGMOD 2007), one full boundary walk per update. Kept as the
///   differential reference; cost grows with
///   `updates × boundaries` instead of `updates + boundaries`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// One ripple walk per update (the reference implementation).
    PerElement,
    /// One sorted merge-ripple pass per qualifying batch.
    #[default]
    Batched,
}

impl UpdatePolicy {
    /// The policy's CLI/report label.
    pub fn label(&self) -> &'static str {
        match self {
            UpdatePolicy::PerElement => "per-element",
            UpdatePolicy::Batched => "batched",
        }
    }

    /// Parses a CLI label (case-insensitive); `None` if unrecognized.
    pub fn parse(s: &str) -> Option<UpdatePolicy> {
        match s.to_ascii_lowercase().as_str() {
            "per-element" | "per_element" | "perelement" => Some(UpdatePolicy::PerElement),
            "batched" | "batch" => Some(UpdatePolicy::Batched),
            _ => None,
        }
    }

    /// Both policies, for sweeps and differential tests.
    pub const ALL: [UpdatePolicy; 2] = [UpdatePolicy::PerElement, UpdatePolicy::Batched];
}

impl std::fmt::Display for UpdatePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of the cracking engines.
///
/// The two thresholds mirror the paper's:
///
/// * **crack size** (`CRACK_SIZE` in Fig. 4): DDC/DDR stop recursive
///   auxiliary cracking once the piece holding the bound is at most this
///   many elements. Defaults to the number of elements fitting in L1
///   ("we found that the size of L1 cache as piece size threshold provides
///   the best overall performance", §4); Fig. 8 sweeps it.
/// * **progressive threshold**: PMDD1R runs its budgeted partition only on
///   pieces larger than this; smaller pieces take the full MDD1R path
///   ("progressive cracking occurs only as long as the targeted data piece
///   is bigger than the L2 cache", §4). Defaults to the elements fitting
///   in L2.
///
/// The **kernel policy** selects between the branchy and branchless
/// implementations of the reorganization primitives per touched piece.
/// Both produce bit-identical results and cost counters, so this is a
/// pure wall-clock knob; the default `Auto` takes the branchless path for
/// pieces past `scrack_partition::AUTO_BRANCHLESS_THRESHOLD`.
///
/// The **index policy** selects the cracker-index representation the
/// engines navigate: the cache-conscious flat sorted-array directory
/// (default) or the paper's AVL tree, kept for differential testing.
/// Like the kernel policy, this is a pure wall-clock knob — crack
/// boundaries, piece metadata and `Stats` are bit-identical under both.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrackConfig {
    /// Cache sizes the defaults are derived from.
    pub cache: CacheProfile,
    /// Explicit `CRACK_SIZE` in elements; `None` derives it from L1.
    pub crack_size_override: Option<usize>,
    /// Explicit progressive threshold in elements; `None` derives from L2.
    pub progressive_threshold_override: Option<usize>,
    /// Which reorganization-kernel implementation the engines run.
    pub kernel: KernelPolicy,
    /// Which cracker-index representation the engines navigate.
    pub index: IndexPolicy,
    /// How pending updates merge into the column (see [`UpdatePolicy`]).
    pub update: UpdatePolicy,
    /// Planned fault injection (disabled by default; see
    /// [`crate::fault`]). Rides on the config so any engine or scheduler
    /// path can be stressed reproducibly.
    pub fault: FaultPlan,
}

impl CrackConfig {
    /// `CRACK_SIZE` in elements for element size `elem_size`.
    #[inline]
    pub fn crack_size(&self, elem_size: usize) -> usize {
        self.crack_size_override
            .unwrap_or_else(|| self.cache.l1_elems(elem_size))
    }

    /// Progressive-cracking piece threshold in elements.
    #[inline]
    pub fn progressive_threshold(&self, elem_size: usize) -> usize {
        self.progressive_threshold_override
            .unwrap_or_else(|| self.cache.l2_elems(elem_size))
    }

    /// Convenience: a config with an explicit crack size (Fig. 8 sweeps).
    pub fn with_crack_size(mut self, elems: usize) -> Self {
        self.crack_size_override = Some(elems);
        self
    }

    /// Convenience: a config with an explicit progressive threshold.
    pub fn with_progressive_threshold(mut self, elems: usize) -> Self {
        self.progressive_threshold_override = Some(elems);
        self
    }

    /// Convenience: a config with an explicit kernel policy.
    pub fn with_kernel(mut self, kernel: KernelPolicy) -> Self {
        self.kernel = kernel;
        self
    }

    /// Convenience: a config with an explicit index policy.
    pub fn with_index(mut self, index: IndexPolicy) -> Self {
        self.index = index;
        self
    }

    /// Convenience: a config with an explicit update policy.
    pub fn with_update(mut self, update: UpdatePolicy) -> Self {
        self.update = update;
        self
    }

    /// Convenience: a config with a planned fault (see [`crate::fault`]).
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_derive_from_cache() {
        let c = CrackConfig::default();
        assert_eq!(c.crack_size(8), 4096); // 32 KiB / 8 B
        assert_eq!(c.progressive_threshold(8), 32768); // 256 KiB / 8 B
    }

    #[test]
    fn overrides_win() {
        let c = CrackConfig::default()
            .with_crack_size(128)
            .with_progressive_threshold(999);
        assert_eq!(c.crack_size(8), 128);
        assert_eq!(c.progressive_threshold(8), 999);
    }

    #[test]
    fn kernel_policy_defaults_to_auto_and_overrides() {
        assert_eq!(CrackConfig::default().kernel, KernelPolicy::Auto);
        let c = CrackConfig::default().with_kernel(KernelPolicy::Branchless);
        assert_eq!(c.kernel, KernelPolicy::Branchless);
    }

    #[test]
    fn index_policy_defaults_to_flat_and_overrides() {
        assert_eq!(CrackConfig::default().index, IndexPolicy::Flat);
        let c = CrackConfig::default().with_index(IndexPolicy::Avl);
        assert_eq!(c.index, IndexPolicy::Avl);
    }

    #[test]
    fn fault_plan_defaults_to_disabled_and_overrides() {
        assert!(!CrackConfig::default().fault.is_armed());
        let c = CrackConfig::default().with_fault(FaultPlan::panic_in_kernel(5));
        assert_eq!(c.fault.kind(), Some(crate::fault::FaultKind::PanicInKernel));
        assert_eq!(c.fault.trigger(), 5);
    }

    #[test]
    fn update_policy_defaults_to_batched_and_parses() {
        assert_eq!(CrackConfig::default().update, UpdatePolicy::Batched);
        let c = CrackConfig::default().with_update(UpdatePolicy::PerElement);
        assert_eq!(c.update, UpdatePolicy::PerElement);
        for p in UpdatePolicy::ALL {
            assert_eq!(UpdatePolicy::parse(p.label()), Some(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(UpdatePolicy::parse("Batched"), Some(UpdatePolicy::Batched));
        assert_eq!(UpdatePolicy::parse("eager"), None);
    }
}
