//! Pending-update queues.

use crate::ripple::{ripple_delete, ripple_insert};
use scrack_core::CrackedColumn;
use scrack_types::{Element, QueryRange};

/// Updates that have arrived but not yet been merged into the cracked
/// column.
///
/// Following the paper's update model, arriving updates cost (almost)
/// nothing; a query pays only for the pending updates *qualifying for its
/// range*, which are merged just before the query is answered ("the
/// qualifying updates for the given query are merged during cracking for
/// Q", §5). Inserts are merged before deletes, so a same-batch
/// insert+delete of one key cancels out.
#[derive(Debug, Clone, Default)]
pub struct PendingUpdates<E> {
    inserts: Vec<E>,
    deletes: Vec<u64>,
}

impl<E: Element> PendingUpdates<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            inserts: Vec::new(),
            deletes: Vec::new(),
        }
    }

    /// Queues an insertion.
    pub fn queue_insert(&mut self, elem: E) {
        self.inserts.push(elem);
    }

    /// Queues a deletion (of one element with the given key).
    pub fn queue_delete(&mut self, key: u64) {
        self.deletes.push(key);
    }

    /// Number of pending inserts.
    pub fn pending_inserts(&self) -> usize {
        self.inserts.len()
    }

    /// Number of pending deletes.
    pub fn pending_deletes(&self) -> usize {
        self.deletes.len()
    }

    /// Merges every pending update whose key falls in `q` into the column,
    /// returning how many updates were applied.
    pub fn merge_qualifying(&mut self, col: &mut CrackedColumn<E>, q: QueryRange) -> usize {
        let mut applied = 0;
        let mut i = 0;
        while i < self.inserts.len() {
            if q.contains(self.inserts[i].key()) {
                let e = self.inserts.swap_remove(i);
                ripple_insert(col, e);
                applied += 1;
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.deletes.len() {
            if q.contains(self.deletes[i]) {
                let k = self.deletes.swap_remove(i);
                // A delete whose key is absent simply evaporates (it may
                // have targeted a never-inserted key).
                let _ = ripple_delete(col, k);
                applied += 1;
            } else {
                i += 1;
            }
        }
        applied
    }

    /// Merges *all* pending updates unconditionally (e.g. at a checkpoint).
    pub fn merge_all(&mut self, col: &mut CrackedColumn<E>) -> usize {
        self.merge_qualifying(col, QueryRange::new(0, u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_core::CrackConfig;

    fn column(n: u64) -> CrackedColumn<u64> {
        let keys: Vec<u64> = (0..n).map(|i| (i * 311) % n).collect();
        let mut col = CrackedColumn::new(keys, CrackConfig::default());
        col.crack_on(n / 3);
        col.crack_on(2 * n / 3);
        col
    }

    #[test]
    fn only_qualifying_updates_merge() {
        let mut col = column(300);
        let mut pending = PendingUpdates::new();
        pending.queue_insert(50u64);
        pending.queue_insert(250u64);
        pending.queue_delete(60);
        pending.queue_delete(260);
        let applied = pending.merge_qualifying(&mut col, QueryRange::new(40, 70));
        assert_eq!(applied, 2, "only the in-range insert and delete");
        assert_eq!(pending.pending_inserts(), 1);
        assert_eq!(pending.pending_deletes(), 1);
        col.check_integrity().unwrap();
        // 50 inserted (now twice), 60 gone.
        let out = col.select_original(QueryRange::new(50, 51));
        assert_eq!(out.len(), 2);
        let out = col.select_original(QueryRange::new(60, 61));
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn merge_all_drains_queues() {
        let mut col = column(100);
        let mut pending = PendingUpdates::new();
        for k in [5u64, 15, 25] {
            pending.queue_insert(k);
        }
        pending.queue_delete(40);
        assert_eq!(pending.merge_all(&mut col), 4);
        assert_eq!(pending.pending_inserts(), 0);
        assert_eq!(pending.pending_deletes(), 0);
        assert_eq!(col.data().len(), 102);
        col.check_integrity().unwrap();
    }

    #[test]
    fn insert_then_delete_same_key_cancels() {
        let mut col = column(100);
        let before = col.data().len();
        let mut pending = PendingUpdates::new();
        pending.queue_insert(1_000u64); // key outside original domain
        pending.queue_delete(1_000);
        pending.merge_all(&mut col);
        assert_eq!(col.data().len(), before);
        col.check_integrity().unwrap();
    }

    #[test]
    fn delete_of_absent_key_evaporates() {
        let mut col = column(100);
        let mut pending = PendingUpdates::new();
        pending.queue_delete(9_999);
        assert_eq!(pending.merge_all(&mut col), 1);
        assert_eq!(col.data().len(), 100);
    }
}
