//! Pending-update queues.

use crate::merge::{merge_ripple_deletes, merge_ripple_inserts};
use crate::ripple::{ripple_delete, ripple_insert};
use scrack_core::{CrackedColumn, UpdatePolicy};
use scrack_types::{Element, QueryRange};

/// One queued update, in arrival order.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PendingOp<E> {
    Insert(E),
    Delete(u64),
}

impl<E: Element> PendingOp<E> {
    fn key(&self) -> u64 {
        match self {
            PendingOp::Insert(e) => e.key(),
            PendingOp::Delete(k) => *k,
        }
    }
}

/// Updates that have arrived but not yet been merged into the cracked
/// column.
///
/// Following the paper's update model, arriving updates cost (almost)
/// nothing; a query pays only for the pending updates *qualifying for its
/// range*, which are merged just before the query is answered ("the
/// qualifying updates for the given query are merged during cracking for
/// Q", §5).
///
/// # Ordering invariant: submission order is application order
///
/// Within one merge, qualifying updates apply **in the order they were
/// queued**. This makes a same-batch insert+delete of one absent key
/// cancel out (the delete finds the freshly inserted element), and —
/// the direction an inserts-first rule gets wrong — keeps a delete
/// queued *before* an insert of the same absent key from annihilating
/// that later insert: the delete evaporates at its own submission
/// point, as a serial replay would have it. Both [`UpdatePolicy`]
/// implementations uphold it: the per-element path ripples op by op,
/// the batched path batches maximal same-kind runs (which cannot
/// reorder across kinds).
#[derive(Debug, Clone, Default)]
pub struct PendingUpdates<E> {
    ops: Vec<PendingOp<E>>,
}

impl<E: Element> PendingUpdates<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self { ops: Vec::new() }
    }

    /// Queues an insertion.
    pub fn queue_insert(&mut self, elem: E) {
        self.ops.push(PendingOp::Insert(elem));
    }

    /// Queues a deletion (of one element with the given key).
    pub fn queue_delete(&mut self, key: u64) {
        self.ops.push(PendingOp::Delete(key));
    }

    /// Number of pending inserts.
    pub fn pending_inserts(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, PendingOp::Insert(_)))
            .count()
    }

    /// Number of pending deletes.
    pub fn pending_deletes(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, PendingOp::Delete(_)))
            .count()
    }

    /// Whether any pending update falls inside `q` (one non-allocating
    /// pass; the cheap pre-check for the common no-merge query).
    pub fn any_qualifying(&self, q: QueryRange) -> bool {
        self.ops.iter().any(|op| q.contains(op.key()))
    }

    /// Removes and returns the pending updates qualifying for `q`,
    /// preserving arrival order (one stable `retain` pass — no
    /// per-removal rescans).
    fn drain_qualifying(&mut self, q: QueryRange) -> Vec<PendingOp<E>> {
        let mut taken = Vec::new();
        self.ops.retain(|op| {
            let take = q.contains(op.key());
            if take {
                taken.push(*op);
            }
            !take
        });
        taken
    }

    /// Merges every pending update whose key falls in `q` into the column,
    /// returning how many updates were applied (a delete of an absent key
    /// counts as applied: it leaves the queue and evaporates).
    ///
    /// The physical merge strategy follows the column's configured
    /// [`UpdatePolicy`]; answers are identical under both (see the
    /// type-level docs for the submission-order invariant).
    pub fn merge_qualifying(&mut self, col: &mut CrackedColumn<E>, q: QueryRange) -> usize {
        if !self.any_qualifying(q) {
            return 0;
        }
        let ops = self.drain_qualifying(q);
        Self::apply(col, ops)
    }

    /// Merges *all* pending updates unconditionally (e.g. at a
    /// checkpoint). Unlike any range-driven merge, this includes updates
    /// with key `u64::MAX`, which no half-open [`QueryRange`] can cover.
    pub fn merge_all(&mut self, col: &mut CrackedColumn<E>) -> usize {
        let ops = std::mem::take(&mut self.ops);
        if ops.is_empty() {
            return 0;
        }
        Self::apply(col, ops)
    }

    /// Applies a drained batch under the column's [`UpdatePolicy`], in
    /// submission order (see the type-level ordering invariant).
    fn apply(col: &mut CrackedColumn<E>, ops: Vec<PendingOp<E>>) -> usize {
        let applied = ops.len();
        // Ripple moves elements across piece boundaries, which would
        // invalidate progressive-job cursors; settle them first (no-op
        // for every non-progressive engine).
        col.settle_all_jobs();
        match col.config().update {
            UpdatePolicy::PerElement => {
                for op in ops {
                    match op {
                        PendingOp::Insert(e) => ripple_insert(col, e),
                        // A delete whose key is absent simply evaporates
                        // (it may have targeted a never-inserted key).
                        PendingOp::Delete(k) => {
                            let _ = ripple_delete(col, k);
                        }
                    }
                }
            }
            UpdatePolicy::Batched => {
                // Batch maximal same-kind runs: within a run order is
                // free (distinct ripples commute), across runs the
                // submission order is preserved.
                let mut ops = ops.into_iter().peekable();
                while let Some(op) = ops.next() {
                    match op {
                        PendingOp::Insert(e) => {
                            let mut run = vec![e];
                            while let Some(PendingOp::Insert(e)) = ops.peek() {
                                run.push(*e);
                                ops.next();
                            }
                            merge_ripple_inserts(col, run);
                        }
                        PendingOp::Delete(k) => {
                            let mut run = vec![k];
                            while let Some(PendingOp::Delete(k)) = ops.peek() {
                                run.push(*k);
                                ops.next();
                            }
                            let _ = merge_ripple_deletes(col, run);
                        }
                    }
                }
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_core::CrackConfig;

    fn column(n: u64, update: UpdatePolicy) -> CrackedColumn<u64> {
        let keys: Vec<u64> = (0..n).map(|i| (i * 311) % n).collect();
        let mut col = CrackedColumn::new(keys, CrackConfig::default().with_update(update));
        col.crack_on(n / 3);
        col.crack_on(2 * n / 3);
        col
    }

    #[test]
    fn only_qualifying_updates_merge_under_both_policies() {
        for policy in UpdatePolicy::ALL {
            let mut col = column(300, policy);
            let mut pending = PendingUpdates::new();
            pending.queue_insert(50u64);
            pending.queue_insert(250u64);
            pending.queue_delete(60);
            pending.queue_delete(260);
            assert!(pending.any_qualifying(QueryRange::new(40, 70)));
            let applied = pending.merge_qualifying(&mut col, QueryRange::new(40, 70));
            assert_eq!(applied, 2, "{policy}: only the in-range insert and delete");
            assert_eq!(pending.pending_inserts(), 1);
            assert_eq!(pending.pending_deletes(), 1);
            col.check_integrity().unwrap();
            // 50 inserted (now twice), 60 gone.
            let out = col.select_original(QueryRange::new(50, 51));
            assert_eq!(out.len(), 2, "{policy}");
            let out = col.select_original(QueryRange::new(60, 61));
            assert_eq!(out.len(), 0, "{policy}");
        }
    }

    #[test]
    fn merge_all_drains_queues() {
        for policy in UpdatePolicy::ALL {
            let mut col = column(100, policy);
            let mut pending = PendingUpdates::new();
            for k in [5u64, 15, 25] {
                pending.queue_insert(k);
            }
            pending.queue_delete(40);
            assert_eq!(pending.merge_all(&mut col), 4, "{policy}");
            assert_eq!(pending.pending_inserts(), 0);
            assert_eq!(pending.pending_deletes(), 0);
            assert_eq!(col.data().len(), 102, "{policy}");
            col.check_integrity().unwrap();
        }
    }

    #[test]
    fn insert_then_delete_same_key_cancels() {
        // The insert-before-delete ordering invariant, under both
        // policies: a same-batch insert+delete of one (previously absent)
        // key must cancel out.
        for policy in UpdatePolicy::ALL {
            let mut col = column(100, policy);
            let before = col.data().len();
            let mut pending = PendingUpdates::new();
            pending.queue_insert(1_000u64); // key outside original domain
            pending.queue_delete(1_000);
            pending.merge_all(&mut col);
            assert_eq!(col.data().len(), before, "{policy}");
            col.check_integrity().unwrap();
        }
    }

    #[test]
    fn delete_of_absent_key_evaporates() {
        for policy in UpdatePolicy::ALL {
            let mut col = column(100, policy);
            let mut pending = PendingUpdates::new();
            pending.queue_delete(9_999);
            assert_eq!(pending.merge_all(&mut col), 1, "{policy}");
            assert_eq!(col.data().len(), 100, "{policy}");
        }
    }

    #[test]
    fn merge_all_covers_the_extreme_key() {
        // No half-open QueryRange can contain u64::MAX; the checkpoint
        // merge must still flush it.
        for policy in UpdatePolicy::ALL {
            let mut col = column(100, policy);
            let mut pending = PendingUpdates::new();
            pending.queue_insert(u64::MAX);
            assert_eq!(pending.merge_all(&mut col), 1, "{policy}");
            assert_eq!(pending.pending_inserts(), 0, "{policy}");
            assert_eq!(col.data().len(), 101, "{policy}");
            col.check_integrity().unwrap();
            pending.queue_delete(u64::MAX);
            assert_eq!(pending.merge_all(&mut col), 1, "{policy}");
            assert_eq!(col.data().len(), 100, "{policy}");
            col.check_integrity().unwrap();
        }
    }

    #[test]
    fn non_qualifying_merge_is_free_and_keeps_order() {
        let mut col = column(100, UpdatePolicy::Batched);
        let mut pending = PendingUpdates::new();
        for k in [200u64, 300, 400] {
            pending.queue_insert(k);
        }
        assert!(!pending.any_qualifying(QueryRange::new(0, 100)));
        assert_eq!(pending.merge_qualifying(&mut col, QueryRange::new(0, 100)), 0);
        // Drain order preserves arrival order (the partition is stable).
        let taken = pending.drain_qualifying(QueryRange::new(250, 450));
        assert_eq!(taken, vec![PendingOp::Insert(300), PendingOp::Insert(400)]);
        assert_eq!(pending.pending_inserts(), 1);
    }

    #[test]
    fn delete_then_insert_of_same_absent_key_keeps_the_insert() {
        // The submission-order invariant's hard direction: a delete
        // queued BEFORE an insert of the same (absent) key must
        // evaporate at its own submission point — an inserts-first
        // reordering would let it annihilate the later insert.
        for policy in UpdatePolicy::ALL {
            let mut col = column(100, policy);
            let before = col.data().len();
            let mut pending = PendingUpdates::new();
            pending.queue_delete(5_000);
            pending.queue_insert(5_000u64);
            assert_eq!(pending.merge_all(&mut col), 2, "{policy}");
            assert_eq!(col.data().len(), before + 1, "{policy}: insert must survive");
            let out = col.select_original(QueryRange::new(5_000, 5_001));
            assert_eq!(out.len(), 1, "{policy}");
            col.check_integrity().unwrap();
        }
    }
}
