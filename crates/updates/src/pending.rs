//! Pending-update queues.

use crate::merge::{merge_ripple_deletes, merge_ripple_inserts};
use crate::ripple::{ripple_delete, ripple_insert};
use scrack_core::{CrackedColumn, UpdatePolicy};
use scrack_types::{Element, QueryRange};

/// Updates that have arrived but not yet been merged into the cracked
/// column.
///
/// Following the paper's update model, arriving updates cost (almost)
/// nothing; a query pays only for the pending updates *qualifying for its
/// range*, which are merged just before the query is answered ("the
/// qualifying updates for the given query are merged during cracking for
/// Q", §5).
///
/// # Ordering invariant: inserts before deletes
///
/// Within one merge, **all qualifying inserts are applied before any
/// qualifying delete**. This is what makes a same-batch insert+delete of
/// one key cancel out (the delete finds the freshly inserted element)
/// instead of silently dropping the delete against a key that does not
/// exist yet. Both [`UpdatePolicy`] implementations uphold it: the
/// per-element path ripples the insert queue first, the batched path runs
/// its insert pass before its delete pass.
#[derive(Debug, Clone, Default)]
pub struct PendingUpdates<E> {
    inserts: Vec<E>,
    deletes: Vec<u64>,
}

impl<E: Element> PendingUpdates<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            inserts: Vec::new(),
            deletes: Vec::new(),
        }
    }

    /// Queues an insertion.
    pub fn queue_insert(&mut self, elem: E) {
        self.inserts.push(elem);
    }

    /// Queues a deletion (of one element with the given key).
    pub fn queue_delete(&mut self, key: u64) {
        self.deletes.push(key);
    }

    /// Number of pending inserts.
    pub fn pending_inserts(&self) -> usize {
        self.inserts.len()
    }

    /// Number of pending deletes.
    pub fn pending_deletes(&self) -> usize {
        self.deletes.len()
    }

    /// Whether any pending update falls inside `q` (one non-allocating
    /// pass; the cheap pre-check for the common no-merge query).
    pub fn any_qualifying(&self, q: QueryRange) -> bool {
        self.inserts.iter().any(|e| q.contains(e.key()))
            || self.deletes.iter().any(|k| q.contains(*k))
    }

    /// Removes and returns the pending updates qualifying for `q` as
    /// `(inserts, deletes)`, preserving arrival order. One stable
    /// `retain` pass per queue — no per-removal rescans.
    fn drain_qualifying(&mut self, q: QueryRange) -> (Vec<E>, Vec<u64>) {
        let mut ins = Vec::new();
        self.inserts.retain(|e| {
            let take = q.contains(e.key());
            if take {
                ins.push(*e);
            }
            !take
        });
        let mut del = Vec::new();
        self.deletes.retain(|k| {
            let take = q.contains(*k);
            if take {
                del.push(*k);
            }
            !take
        });
        (ins, del)
    }

    /// Merges every pending update whose key falls in `q` into the column,
    /// returning how many updates were applied (a delete of an absent key
    /// counts as applied: it leaves the queue and evaporates).
    ///
    /// The physical merge strategy follows the column's configured
    /// [`UpdatePolicy`]; answers are identical under both (see the
    /// type-level docs for the insert-before-delete ordering invariant).
    pub fn merge_qualifying(&mut self, col: &mut CrackedColumn<E>, q: QueryRange) -> usize {
        if !self.any_qualifying(q) {
            return 0;
        }
        let (ins, del) = self.drain_qualifying(q);
        Self::apply(col, ins, del)
    }

    /// Merges *all* pending updates unconditionally (e.g. at a
    /// checkpoint). Unlike any range-driven merge, this includes updates
    /// with key `u64::MAX`, which no half-open [`QueryRange`] can cover.
    pub fn merge_all(&mut self, col: &mut CrackedColumn<E>) -> usize {
        let ins = std::mem::take(&mut self.inserts);
        let del = std::mem::take(&mut self.deletes);
        if ins.is_empty() && del.is_empty() {
            return 0;
        }
        Self::apply(col, ins, del)
    }

    /// Applies a drained batch under the column's [`UpdatePolicy`],
    /// inserts before deletes (see the type-level ordering invariant).
    fn apply(col: &mut CrackedColumn<E>, ins: Vec<E>, del: Vec<u64>) -> usize {
        let applied = ins.len() + del.len();
        // Ripple moves elements across piece boundaries, which would
        // invalidate progressive-job cursors; settle them first (no-op
        // for every non-progressive engine).
        col.settle_all_jobs();
        match col.config().update {
            UpdatePolicy::PerElement => {
                for e in ins {
                    ripple_insert(col, e);
                }
                for k in del {
                    // A delete whose key is absent simply evaporates (it
                    // may have targeted a never-inserted key).
                    let _ = ripple_delete(col, k);
                }
            }
            UpdatePolicy::Batched => {
                merge_ripple_inserts(col, ins);
                let _ = merge_ripple_deletes(col, del);
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_core::CrackConfig;

    fn column(n: u64, update: UpdatePolicy) -> CrackedColumn<u64> {
        let keys: Vec<u64> = (0..n).map(|i| (i * 311) % n).collect();
        let mut col = CrackedColumn::new(keys, CrackConfig::default().with_update(update));
        col.crack_on(n / 3);
        col.crack_on(2 * n / 3);
        col
    }

    #[test]
    fn only_qualifying_updates_merge_under_both_policies() {
        for policy in UpdatePolicy::ALL {
            let mut col = column(300, policy);
            let mut pending = PendingUpdates::new();
            pending.queue_insert(50u64);
            pending.queue_insert(250u64);
            pending.queue_delete(60);
            pending.queue_delete(260);
            assert!(pending.any_qualifying(QueryRange::new(40, 70)));
            let applied = pending.merge_qualifying(&mut col, QueryRange::new(40, 70));
            assert_eq!(applied, 2, "{policy}: only the in-range insert and delete");
            assert_eq!(pending.pending_inserts(), 1);
            assert_eq!(pending.pending_deletes(), 1);
            col.check_integrity().unwrap();
            // 50 inserted (now twice), 60 gone.
            let out = col.select_original(QueryRange::new(50, 51));
            assert_eq!(out.len(), 2, "{policy}");
            let out = col.select_original(QueryRange::new(60, 61));
            assert_eq!(out.len(), 0, "{policy}");
        }
    }

    #[test]
    fn merge_all_drains_queues() {
        for policy in UpdatePolicy::ALL {
            let mut col = column(100, policy);
            let mut pending = PendingUpdates::new();
            for k in [5u64, 15, 25] {
                pending.queue_insert(k);
            }
            pending.queue_delete(40);
            assert_eq!(pending.merge_all(&mut col), 4, "{policy}");
            assert_eq!(pending.pending_inserts(), 0);
            assert_eq!(pending.pending_deletes(), 0);
            assert_eq!(col.data().len(), 102, "{policy}");
            col.check_integrity().unwrap();
        }
    }

    #[test]
    fn insert_then_delete_same_key_cancels() {
        // The insert-before-delete ordering invariant, under both
        // policies: a same-batch insert+delete of one (previously absent)
        // key must cancel out.
        for policy in UpdatePolicy::ALL {
            let mut col = column(100, policy);
            let before = col.data().len();
            let mut pending = PendingUpdates::new();
            pending.queue_insert(1_000u64); // key outside original domain
            pending.queue_delete(1_000);
            pending.merge_all(&mut col);
            assert_eq!(col.data().len(), before, "{policy}");
            col.check_integrity().unwrap();
        }
    }

    #[test]
    fn delete_of_absent_key_evaporates() {
        for policy in UpdatePolicy::ALL {
            let mut col = column(100, policy);
            let mut pending = PendingUpdates::new();
            pending.queue_delete(9_999);
            assert_eq!(pending.merge_all(&mut col), 1, "{policy}");
            assert_eq!(col.data().len(), 100, "{policy}");
        }
    }

    #[test]
    fn merge_all_covers_the_extreme_key() {
        // No half-open QueryRange can contain u64::MAX; the checkpoint
        // merge must still flush it.
        for policy in UpdatePolicy::ALL {
            let mut col = column(100, policy);
            let mut pending = PendingUpdates::new();
            pending.queue_insert(u64::MAX);
            assert_eq!(pending.merge_all(&mut col), 1, "{policy}");
            assert_eq!(pending.pending_inserts(), 0, "{policy}");
            assert_eq!(col.data().len(), 101, "{policy}");
            col.check_integrity().unwrap();
            pending.queue_delete(u64::MAX);
            assert_eq!(pending.merge_all(&mut col), 1, "{policy}");
            assert_eq!(col.data().len(), 100, "{policy}");
            col.check_integrity().unwrap();
        }
    }

    #[test]
    fn non_qualifying_merge_is_free_and_keeps_order() {
        let mut col = column(100, UpdatePolicy::Batched);
        let mut pending = PendingUpdates::new();
        for k in [200u64, 300, 400] {
            pending.queue_insert(k);
        }
        assert!(!pending.any_qualifying(QueryRange::new(0, 100)));
        assert_eq!(pending.merge_qualifying(&mut col, QueryRange::new(0, 100)), 0);
        // Drain order preserves arrival order (the partition is stable).
        let (ins, _) = pending.drain_qualifying(QueryRange::new(250, 450));
        assert_eq!(ins, vec![300, 400]);
        assert_eq!(pending.pending_inserts(), 1);
    }
}
