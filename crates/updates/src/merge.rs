//! The batched **merge-ripple**: one boundary walk per update batch.
//!
//! The per-element Ripple ([`crate::ripple_insert`] /
//! [`crate::ripple_delete`]) pays one full boundary walk per update —
//! with `U` qualifying updates and `B` crack boundaries that is
//! `O(U · B)` index hops (each a binary search on the flat
//! representation). The merge-ripple sorts the qualifying batch once and
//! applies it in a **single pass over the boundaries**: every crossed
//! crack is visited exactly once and shifted by the batch's cumulative
//! size delta, so the index cost drops to `O(U log U + B)` while the
//! element moves stay bounded by the per-element count (at each boundary
//! the merge moves `min(holes, piece len)` elements where per-element
//! Ripple moves `holes`).
//!
//! Both passes preserve the cracker invariant piece by piece — piece
//! interiors are unordered, so a piece may donate *any* of its elements
//! to a neighboring slot:
//!
//! * **Inserts** walk boundaries right-to-left. The array grows by the
//!   batch size, opening a hole block at the end; at each crack, the
//!   pending inserts belonging to the piece right of it drop into the top
//!   of the hole block, then the crack shifts right over the remaining
//!   holes while its right piece donates leading elements to refill them.
//! * **Deletes** walk boundaries left-to-right. Matches inside a piece
//!   are swapped out against the piece's tail, growing a hole block at
//!   the piece end; at each crack, the boundary shifts left over the
//!   holes while the next piece donates trailing elements, until the
//!   block reaches the array end and is truncated.
//!
//! Answers are bit-identical to the per-element reference (the merged
//! multiset is the same); physical interior order and `Stats` counters
//! may differ — that difference *is* the optimization.

use scrack_core::CrackedColumn;
use scrack_types::Element;

/// Inserts a sorted batch of elements in one right-to-left boundary walk.
///
/// Equivalent in effect to calling [`crate::ripple_insert`] once per
/// element: every insert lands in the piece whose key range contains it,
/// and every crack position shifts by the number of inserts below it.
///
/// # Panics
/// Debug builds panic if a progressive partition job is active (settle
/// with [`CrackedColumn::settle_all_jobs`] first).
pub fn merge_ripple_inserts<E: Element>(col: &mut CrackedColumn<E>, mut ins: Vec<E>) {
    if ins.is_empty() {
        return;
    }
    debug_assert!(
        !col.has_active_jobs(),
        "merge-ripple cannot run with progressive jobs in flight"
    );
    ins.sort_unstable_by_key(Element::key);
    let (data, index, stats) = col.parts_mut();
    let old_len = data.len();
    // Grow by the batch size; the tail is a hole block (placeholder
    // values, overwritten before the pass ends).
    data.resize(old_len + ins.len(), ins[0]);
    index.set_column_len(data.len());
    let mut hole_start = old_len; // hole block spans [hole_start, hole_start + h)
    let mut h = ins.len(); // unplaced inserts == holes
    let mut cur = index.max_crack();
    while let Some(id) = cur {
        let ckey = index.crack_key(id);
        // Inserts with key >= ckey belong to the piece right of this
        // crack (higher cracks were already handled); drop them into the
        // top of the hole block, which sits at that piece's end.
        let keep = ins[..h].partition_point(|e| e.key() < ckey);
        let placed = h - keep;
        for i in 0..placed {
            data[hole_start + keep + i] = ins[keep + i];
        }
        stats.touched += placed as u64;
        h = keep;
        if h == 0 {
            break; // no inserts below this crack: nothing left to shift
        }
        let p = index.crack_pos(id);
        // Shift the boundary right by the remaining holes: the right
        // piece (currently [p, hole_start)) donates leading elements to
        // the hole block; the vacated/remaining slots become the new
        // hole block at the end of the piece left of the crack.
        let s = hole_start - p;
        let m = h.min(s);
        let off = h.max(s);
        for i in 0..m {
            data[p + off + i] = data[p + i];
        }
        stats.touched += m as u64;
        stats.swaps += m as u64;
        index.set_crack_pos(id, p + h);
        hole_start = p;
        cur = index.crack_before(ckey);
    }
    // Inserts below every crack land in the bottom piece's hole block.
    data[hole_start..hole_start + h].copy_from_slice(&ins[..h]);
    stats.touched += h as u64;
}

/// Deletes one element per key in `del` (keys that match nothing
/// evaporate) in one left-to-right boundary walk; returns how many
/// elements were actually removed.
///
/// Equivalent in effect to calling [`crate::ripple_delete`] once per
/// key. Pieces between delete clusters with no holes in flight are
/// skipped entirely (the walk re-seeds at the next targeted piece).
///
/// # Panics
/// Debug builds panic if a progressive partition job is active (settle
/// with [`CrackedColumn::settle_all_jobs`] first).
pub fn merge_ripple_deletes<E: Element>(col: &mut CrackedColumn<E>, mut del: Vec<u64>) -> usize {
    if del.is_empty() {
        return 0;
    }
    debug_assert!(
        !col.has_active_jobs(),
        "merge-ripple cannot run with progressive jobs in flight"
    );
    del.sort_unstable();
    let mut removed = 0usize;
    let mut di = 0usize; // cursor into the sorted delete keys
    let mut g = 0usize; // hole block size, always at [piece_end - g, piece_end)
    // Per-piece delete multiset, run-length encoded as sorted
    // (key, remaining) pairs: O(log d) lookup and O(1) decrement per
    // scanned element, so a large batch on one piece stays linear.
    let mut want: Vec<(u64, usize)> = Vec::new();

    // Seed at the piece containing the smallest delete key.
    let first = col.index().piece_containing(del[0]);
    let (mut start, mut end, mut hi_key, mut right) =
        (first.start, first.end, first.hi_key, first.right_crack);
    loop {
        let (data, index, stats) = col.parts_mut();
        // Delete keys targeting this piece: del[di..dj).
        let dj = di + del[di..].partition_point(|k| hi_key.is_none_or(|hi| *k < hi));
        if dj > di {
            want.clear();
            for &k in &del[di..dj] {
                match want.last_mut() {
                    Some((wk, c)) if *wk == k => *c += 1,
                    _ => want.push((k, 1)),
                }
            }
            let mut want_left = dj - di;
            di = dj;
            // Scan the piece content [start, end - g); each match swaps
            // the piece's last content element into its slot, growing
            // the hole block. The swapped-in element is re-examined.
            let mut pos = start;
            while pos < end - g && want_left > 0 {
                let k = data[pos].key();
                stats.touched += 1;
                stats.comparisons += 1;
                let hit = want
                    .binary_search_by_key(&k, |&(wk, _)| wk)
                    .ok()
                    .filter(|&w| want[w].1 > 0);
                if let Some(w) = hit {
                    want[w].1 -= 1;
                    want_left -= 1;
                    data[pos] = data[end - g - 1];
                    g += 1;
                    removed += 1;
                    stats.swaps += 1;
                } else {
                    pos += 1;
                }
            }
            // Unmatched keys evaporate (absent from the column).
        }
        match right {
            None => {
                // Topmost piece: the hole block sits at the array end.
                debug_assert_eq!(end, data.len());
                data.truncate(end - g);
                index.set_column_len(data.len());
                break;
            }
            Some(_) if g == 0 && di < del.len() => {
                // No holes in flight: jump straight to the next targeted
                // piece instead of walking the boundaries between.
                let next = col.index().piece_containing(del[di]);
                (start, end, hi_key, right) = (next.start, next.end, next.hi_key, next.right_crack);
            }
            Some(_) if g == 0 => break, // nothing left to do anywhere
            Some(id) => {
                // Shift this boundary left over the holes; the next piece
                // donates trailing elements to refill them, re-forming
                // the hole block at its own end.
                let p = index.crack_pos(id);
                debug_assert_eq!(p, end);
                index.set_crack_pos(id, p - g);
                let ckey = index.crack_key(id);
                let next_right = index.crack_after(ckey);
                let next_end = next_right.map_or(data.len(), |nid| index.crack_pos(nid));
                let s = next_end - p;
                let m = g.min(s);
                for i in 0..m {
                    data[p - g + i] = data[next_end - m + i];
                }
                stats.touched += m as u64;
                stats.swaps += m as u64;
                let next_hi = next_right.map(|nid| index.crack_key(nid));
                (start, end, hi_key, right) = (p - g, next_end, next_hi, next_right);
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ripple_delete, ripple_insert};
    use scrack_core::CrackConfig;
    use scrack_types::QueryRange;

    fn cracked_column(n: u64, cracks: &[u64]) -> CrackedColumn<u64> {
        let keys: Vec<u64> = (0..n).map(|i| (i * 7919) % n).collect();
        let mut col = CrackedColumn::new(keys, CrackConfig::default());
        for c in cracks {
            col.crack_on(*c);
        }
        col.check_integrity().unwrap();
        col
    }

    fn sorted_keys(col: &CrackedColumn<u64>) -> Vec<u64> {
        let mut v = col.data().to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn batch_insert_matches_per_element_multiset_and_cracks() {
        let ins: Vec<u64> = vec![0, 39, 40, 41, 250, 999, 1_500, 40];
        let mut batched = cracked_column(1_000, &[100, 500, 900]);
        let mut reference = cracked_column(1_000, &[100, 500, 900]);
        merge_ripple_inserts(&mut batched, ins.clone());
        for k in &ins {
            ripple_insert(&mut reference, *k);
        }
        batched.check_integrity().unwrap();
        assert_eq!(sorted_keys(&batched), sorted_keys(&reference));
        let cb: Vec<(u64, usize)> = batched.index().iter_cracks().map(|(k, p, _)| (k, p)).collect();
        let cr: Vec<(u64, usize)> = reference.index().iter_cracks().map(|(k, p, _)| (k, p)).collect();
        assert_eq!(cb, cr, "crack positions must shift identically");
    }

    #[test]
    fn batch_insert_into_uncracked_and_empty_columns() {
        let mut col = cracked_column(10, &[]);
        merge_ripple_inserts(&mut col, vec![3, 7, 100]);
        assert_eq!(col.data().len(), 13);
        col.check_integrity().unwrap();

        let mut empty: CrackedColumn<u64> = CrackedColumn::new(vec![], CrackConfig::default());
        merge_ripple_inserts(&mut empty, vec![5, 1]);
        assert_eq!(sorted_keys(&empty), vec![1, 5]);
        empty.check_integrity().unwrap();
    }

    #[test]
    fn batch_insert_through_empty_pieces() {
        // Adjacent cracks with nothing between them: donation count is
        // bounded by the (zero) piece size.
        let mut col = cracked_column(100, &[]);
        let _ = col.select_original(QueryRange::new(40, 41)); // cracks 40, 41
        let _ = col.select_original(QueryRange::new(41, 42)); // piece [41,42) of size 1
        merge_ripple_inserts(&mut col, vec![0, 1, 2, 3, 40, 41]);
        col.check_integrity().unwrap();
        assert_eq!(col.data().len(), 106);
        let out = col.select_original(QueryRange::new(40, 42));
        assert_eq!(out.keys_sorted(col.data()), vec![40, 40, 41, 41]);
    }

    #[test]
    fn batch_delete_matches_per_element_multiset_and_cracks() {
        let del: Vec<u64> = vec![0, 99, 100, 450, 450, 899, 999, 5_000];
        let mut batched = cracked_column(1_000, &[100, 500, 900]);
        let mut reference = cracked_column(1_000, &[100, 500, 900]);
        let removed = merge_ripple_deletes(&mut batched, del.clone());
        let mut ref_removed = 0;
        for k in &del {
            if ripple_delete(&mut reference, *k).is_some() {
                ref_removed += 1;
            }
        }
        batched.check_integrity().unwrap();
        assert_eq!(removed, ref_removed);
        assert_eq!(removed, 6, "450 exists once; 5000 never");
        assert_eq!(sorted_keys(&batched), sorted_keys(&reference));
        let cb: Vec<(u64, usize)> = batched.index().iter_cracks().map(|(k, p, _)| (k, p)).collect();
        let cr: Vec<(u64, usize)> = reference.index().iter_cracks().map(|(k, p, _)| (k, p)).collect();
        assert_eq!(cb, cr);
    }

    #[test]
    fn batch_delete_drains_small_pieces_completely() {
        let mut col = cracked_column(100, &[10, 20, 90]);
        // Delete the whole piece [10, 20) plus neighbors in one batch.
        let del: Vec<u64> = (5..25).collect();
        let removed = merge_ripple_deletes(&mut col, del);
        assert_eq!(removed, 20);
        assert_eq!(col.data().len(), 80);
        col.check_integrity().unwrap();
        let out = col.select_original(QueryRange::new(0, 30));
        assert_eq!(out.keys_sorted(col.data()), (0..5).chain(25..30).collect::<Vec<u64>>());
    }

    #[test]
    fn batch_delete_of_only_absent_keys_is_a_noop() {
        let mut col = cracked_column(50, &[25]);
        assert_eq!(merge_ripple_deletes(&mut col, vec![1_000, 2_000]), 0);
        assert_eq!(col.data().len(), 50);
        col.check_integrity().unwrap();
    }

    #[test]
    fn interleaved_batches_match_per_element_reference() {
        let mut batched = cracked_column(500, &[100, 200, 300, 400]);
        let mut reference = batched.clone();
        let mut state = 0x1234_5678u64;
        for round in 0..20u64 {
            let mut ins = Vec::new();
            let mut del = Vec::new();
            for i in 0..25u64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let k = state % 700;
                if (round + i) % 3 == 0 {
                    ins.push(k);
                } else {
                    del.push(k);
                }
            }
            merge_ripple_inserts(&mut batched, ins.clone());
            merge_ripple_deletes(&mut batched, del.clone());
            for k in ins {
                ripple_insert(&mut reference, k);
            }
            for k in del {
                let _ = ripple_delete(&mut reference, k);
            }
            batched.check_integrity().unwrap();
            assert_eq!(sorted_keys(&batched), sorted_keys(&reference), "round {round}");
        }
    }

    #[test]
    fn batch_cost_is_one_walk_not_per_element() {
        // 8 boundaries, 64 inserts below all of them: per-element Ripple
        // moves 64 * 8 elements; the merge moves at most 8 * 64 too, but
        // its *index* walk is one pass — touched stays near one donation
        // set per boundary plus the placements.
        let cracks: Vec<u64> = (1..9).map(|i| i * 1_000).collect();
        let mut col = cracked_column(10_000, &cracks);
        let before = col.stats();
        merge_ripple_inserts(&mut col, vec![0; 64]);
        let delta = col.stats().since(&before);
        // 64 placements + 8 boundaries x 64 donations max.
        assert!(delta.touched <= 64 + 8 * 64, "touched {}", delta.touched);
        col.check_integrity().unwrap();
    }
}
