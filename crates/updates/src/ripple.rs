//! The Ripple insert/delete primitives.

use scrack_core::CrackedColumn;
use scrack_types::Element;

/// Inserts `elem` into its correct piece of the cracked column.
///
/// The array grows by one at the end; the new slot then "ripples" down
/// toward the target piece: for every crack with value greater than the
/// element's key (visited in descending value order), the first element of
/// that crack's right-hand piece moves into the hole and the crack
/// position shifts right by one. Cost: one move and one index update per
/// crossed boundary — `O(pieces right of the key)`, independent of `N`.
///
/// ```
/// use scrack_core::{CrackConfig, CrackedColumn};
/// use scrack_updates::ripple_insert;
/// use scrack_types::QueryRange;
///
/// let mut col = CrackedColumn::new((0..100u64).rev().collect(), CrackConfig::default());
/// col.crack_on(50); // one boundary
/// ripple_insert(&mut col, 50); // a duplicate of key 50
/// assert_eq!(col.data().len(), 101);
/// let out = col.select_original(QueryRange::new(50, 51));
/// assert_eq!(out.len(), 2);
/// ```
///
/// # Panics
/// Debug builds panic if a progressive partition job is active (job
/// cursors would be invalidated; the paper's update experiments use
/// `Crack` and `MDD1R`, which never hold jobs).
pub fn ripple_insert<E: Element>(col: &mut CrackedColumn<E>, elem: E) {
    debug_assert!(
        !col.has_active_jobs(),
        "ripple updates cannot run with progressive jobs in flight"
    );
    let key = elem.key();
    let (data, index, stats) = col.parts_mut();
    data.push(elem); // placeholder; the slot is treated as a hole
    index.set_column_len(data.len());
    let mut hole = data.len() - 1;
    // Walk cracks right-to-left while they exceed the new key.
    let mut cur = index.max_crack();
    while let Some(id) = cur {
        let ckey = index.crack_key(id);
        if ckey <= key {
            break;
        }
        let p = index.crack_pos(id);
        // The piece right of this crack donates its first element to its
        // own end (the hole), and the boundary moves right over the hole.
        data[hole] = data[p];
        index.set_crack_pos(id, p + 1);
        stats.touched += 1;
        stats.swaps += 1;
        hole = p;
        cur = index.crack_before(ckey);
    }
    data[hole] = elem;
    stats.touched += 1;
}

/// Deletes one element with the given key, if present.
///
/// The inverse ripple: the hole left by the deleted element moves to the
/// end of its piece, then boundary-by-boundary to the array end, where the
/// array shrinks by one. Returns the removed element, or `None` if no
/// element with `key` exists.
pub fn ripple_delete<E: Element>(col: &mut CrackedColumn<E>, key: u64) -> Option<E> {
    debug_assert!(
        !col.has_active_jobs(),
        "ripple updates cannot run with progressive jobs in flight"
    );
    let piece = col.index().piece_containing(key);
    let (data, index, stats) = col.parts_mut();
    // Locate one instance inside the (unordered) piece.
    let off = data[piece.start..piece.end]
        .iter()
        .position(|e| e.key() == key);
    stats.touched += off.map_or(piece.len(), |o| o + 1) as u64;
    stats.comparisons += off.map_or(piece.len(), |o| o + 1) as u64;
    let i = piece.start + off?;
    let removed = data[i];
    // Hole to the end of the target piece.
    data[i] = data[piece.end - 1];
    let mut hole = piece.end - 1;
    stats.swaps += 1;
    // Walk cracks left-to-right above the key; each boundary moves left
    // over the hole and its right piece donates its last element.
    let mut cur = index.crack_after(key);
    while let Some(id) = cur {
        let p = index.crack_pos(id);
        debug_assert_eq!(hole, p - 1, "hole must sit just left of the boundary");
        index.set_crack_pos(id, p - 1);
        let next = index.crack_after(index.crack_key(id));
        let end = next.map_or(data.len(), |nid| index.crack_pos(nid));
        data[hole] = data[end - 1];
        stats.touched += 1;
        stats.swaps += 1;
        hole = end - 1;
        cur = next;
    }
    debug_assert_eq!(hole, data.len() - 1);
    data.pop();
    index.set_column_len(data.len());
    Some(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_core::CrackConfig;
    use scrack_types::QueryRange;

    fn cracked_column(n: u64, cracks: &[u64]) -> CrackedColumn<u64> {
        let keys: Vec<u64> = (0..n).map(|i| (i * 7919) % n).collect();
        let mut col = CrackedColumn::new(keys, CrackConfig::default());
        for c in cracks {
            col.crack_on(*c);
        }
        col.check_integrity().unwrap();
        col
    }

    #[test]
    fn insert_lands_in_correct_piece() {
        let mut col = cracked_column(100, &[20, 40, 60, 80]);
        ripple_insert(&mut col, 1_000); // beyond the max: last piece
        ripple_insert(&mut col, 0); // duplicate of the min: first piece
        ripple_insert(&mut col, 40); // exactly on a boundary: its right piece
        ripple_insert(&mut col, 39); // just below the boundary
        assert_eq!(col.data().len(), 104);
        col.check_integrity().unwrap();
        // The inserted keys are answerable.
        let out = col.select_original(QueryRange::new(39, 41));
        assert_eq!(out.keys_sorted(col.data()), vec![39, 39, 40, 40]);
    }

    #[test]
    fn insert_into_uncracked_column() {
        let mut col = cracked_column(10, &[]);
        ripple_insert(&mut col, 5);
        assert_eq!(col.data().len(), 11);
        col.check_integrity().unwrap();
    }

    #[test]
    fn insert_shifts_only_later_boundaries() {
        let mut col = cracked_column(1000, &[100, 500, 900]);
        let before: Vec<(u64, usize)> = col.index().iter_cracks().map(|(k, p, _)| (k, p)).collect();
        ripple_insert(&mut col, 500); // belongs to piece [500, 900)
        let after: Vec<(u64, usize)> = col.index().iter_cracks().map(|(k, p, _)| (k, p)).collect();
        assert_eq!(after[0], before[0], "boundary 100 untouched");
        assert_eq!(after[1], before[1], "boundary 500 untouched");
        assert_eq!(
            after[2],
            (before[2].0, before[2].1 + 1),
            "boundary 900 shifted"
        );
        col.check_integrity().unwrap();
    }

    #[test]
    fn delete_removes_exactly_one_instance() {
        let mut col = cracked_column(100, &[30, 70]);
        ripple_insert(&mut col, 50); // now two elements with key 50
        assert_eq!(col.data().len(), 101);
        assert_eq!(ripple_delete(&mut col, 50), Some(50));
        col.check_integrity().unwrap();
        let out = col.select_original(QueryRange::new(50, 51));
        assert_eq!(out.len(), 1, "one instance must remain");
        assert_eq!(ripple_delete(&mut col, 50), Some(50));
        let out = col.select_original(QueryRange::new(50, 51));
        assert_eq!(out.len(), 0);
        assert_eq!(ripple_delete(&mut col, 50), None, "nothing left to delete");
    }

    #[test]
    fn delete_from_first_and_last_pieces() {
        let mut col = cracked_column(100, &[50]);
        assert_eq!(ripple_delete(&mut col, 10), Some(10));
        assert_eq!(ripple_delete(&mut col, 99), Some(99));
        assert_eq!(col.data().len(), 98);
        col.check_integrity().unwrap();
    }

    #[test]
    fn delete_missing_key_is_none_and_harmless() {
        let mut col = cracked_column(50, &[25]);
        ripple_delete(&mut col, 10).unwrap();
        assert_eq!(ripple_delete(&mut col, 10), None);
        assert_eq!(col.data().len(), 49);
        col.check_integrity().unwrap();
    }

    #[test]
    fn interleaved_updates_preserve_integrity_and_content() {
        let mut col = cracked_column(500, &[100, 200, 300, 400]);
        let mut expected: Vec<u64> = col.data().to_vec();
        for i in 0..200u64 {
            let k = (i * 37) % 600;
            if i % 3 == 0 {
                ripple_insert(&mut col, k);
                expected.push(k);
            } else if let Some(e) = ripple_delete(&mut col, k) {
                let idx = expected.iter().position(|x| *x == e).unwrap();
                expected.swap_remove(idx);
            }
            col.check_integrity().unwrap();
        }
        let mut got: Vec<u64> = col.data().to_vec();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn insert_cost_is_per_boundary_not_per_tuple() {
        let mut col = cracked_column(10_000, &[2_000, 4_000, 6_000, 8_000]);
        let before = col.stats();
        ripple_insert(&mut col, 0);
        let delta = col.stats().since(&before);
        assert!(
            delta.touched <= 6,
            "insert should touch one element per boundary, touched {}",
            delta.touched
        );
    }
}
