//! The `Updatable` engine wrapper: merge-on-demand around any cracker.

use crate::pending::PendingUpdates;
use scrack_columnstore::QueryOutput;
use scrack_core::{CrackEngine, CrackedColumn, Engine, Mdd1rEngine};
use scrack_types::{Element, QueryRange, Stats};

/// Engines exposing their underlying cracker column, so updates can be
/// rippled in.
pub trait CrackAccess<E: Element> {
    /// The engine's cracker column.
    fn cracked_mut(&mut self) -> &mut CrackedColumn<E>;
}

impl<E: Element> CrackAccess<E> for CrackEngine<E> {
    fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        CrackEngine::cracked_mut(self)
    }
}

impl<E: Element> CrackAccess<E> for Mdd1rEngine<E> {
    fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        Mdd1rEngine::cracked_mut(self)
    }
}

/// A cracking engine with a pending-update queue merged on demand.
///
/// This is the setup of the paper's Fig. 15: updates interleave with
/// queries; each query first ripples in the pending updates qualifying for
/// its range, then proceeds as usual. Works for `Crack` and `MDD1R`
/// (`Scrack`) — the two strategies the figure compares.
#[derive(Debug, Clone)]
pub struct Updatable<Eng, E> {
    engine: Eng,
    pending: PendingUpdates<E>,
}

impl<Eng, E> Updatable<Eng, E>
where
    E: Element,
    Eng: Engine<E> + CrackAccess<E>,
{
    /// Wraps an engine with an empty update queue.
    pub fn new(engine: Eng) -> Self {
        Self {
            engine,
            pending: PendingUpdates::new(),
        }
    }

    /// Queues an insertion (cost deferred to a qualifying query).
    pub fn insert(&mut self, elem: E) {
        self.pending.queue_insert(elem);
    }

    /// Queues a deletion.
    pub fn delete(&mut self, key: u64) {
        self.pending.queue_delete(key);
    }

    /// Pending updates not yet merged.
    pub fn pending_len(&self) -> usize {
        self.pending.pending_inserts() + self.pending.pending_deletes()
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &Eng {
        &self.engine
    }
}

impl<Eng, E> Engine<E> for Updatable<Eng, E>
where
    E: Element,
    Eng: Engine<E> + CrackAccess<E>,
{
    fn name(&self) -> String {
        self.engine.name()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.pending.merge_qualifying(self.engine.cracked_mut(), q);
        self.engine.select(q)
    }

    fn data(&self) -> &[E] {
        self.engine.data()
    }

    fn stats(&self) -> Stats {
        self.engine.stats()
    }

    fn reset_stats(&mut self) {
        self.engine.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_core::CrackConfig;

    #[test]
    fn queries_see_queued_inserts_in_their_range() {
        let keys: Vec<u64> = (0..1000).map(|i| (i * 17) % 1000).collect();
        let mut eng = Updatable::new(CrackEngine::new(keys, CrackConfig::default()));
        eng.insert(500u64);
        eng.insert(501u64);
        eng.insert(2_000u64);
        assert_eq!(eng.pending_len(), 3);
        let out = eng.select(QueryRange::new(500, 502));
        // 500, 501 already existed once each; the inserts add one more of
        // each.
        assert_eq!(out.len(), 4);
        assert_eq!(eng.pending_len(), 1, "out-of-range insert stays pending");
    }

    #[test]
    fn deletes_hide_tuples_from_queries() {
        let keys: Vec<u64> = (0..100).collect();
        let mut eng = Updatable::new(Mdd1rEngine::new(keys, CrackConfig::default(), 1));
        eng.delete(42);
        let out = eng.select(QueryRange::new(40, 45));
        assert_eq!(out.keys_sorted(eng.data()), vec![40, 41, 43, 44]);
    }

    #[test]
    fn non_qualifying_updates_cost_nothing_now() {
        let keys: Vec<u64> = (0..10_000).collect();
        let mut eng = Updatable::new(CrackEngine::new(keys, CrackConfig::default()));
        // Prime some cracks.
        eng.select(QueryRange::new(4_000, 6_000));
        let before = eng.stats();
        for k in 0..100u64 {
            eng.insert(9_000 + k);
        }
        // A query far from the pending updates must not pay for them.
        let _ = eng.select(QueryRange::new(4_500, 4_510));
        let delta = eng.stats().since(&before);
        assert!(
            delta.swaps < 4_000,
            "query far from updates should not merge them (swaps {})",
            delta.swaps
        );
        assert_eq!(eng.pending_len(), 100);
    }
}
