//! The `Updatable` engine wrapper: merge-on-demand around any cracker.

use crate::pending::PendingUpdates;
use scrack_columnstore::QueryOutput;
use scrack_core::{
    CrackConfig, CrackEngine, CrackedColumn, Dd1cEngine, Dd1mEngine, Dd1rEngine, DdcEngine,
    DdmEngine, DdrEngine, Engine, EngineKind, Mdd1mEngine, Mdd1rEngine, ProgressiveEngine,
    RandomInjectEngine, SelectiveEngine,
};
use scrack_types::{Element, QueryRange, Stats};

/// Engines exposing their underlying cracker column, so updates can be
/// rippled in.
///
/// Every cracker-backed engine in the factory implements this (`Scan` and
/// `Sort` have no cracker column and are excluded); progressive engines
/// are supported too — the merge path settles their in-flight partition
/// jobs before rippling ([`CrackedColumn::settle_all_jobs`]).
pub trait CrackAccess<E: Element> {
    /// The engine's cracker column.
    fn cracked_mut(&mut self) -> &mut CrackedColumn<E>;
}

macro_rules! impl_crack_access {
    ($($ty:ident),+ $(,)?) => {
        $(impl<E: Element> CrackAccess<E> for $ty<E> {
            fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
                $ty::cracked_mut(self)
            }
        })+
    };
}

impl_crack_access!(
    CrackEngine,
    DdcEngine,
    DdrEngine,
    Dd1cEngine,
    Dd1rEngine,
    Mdd1rEngine,
    DdmEngine,
    Dd1mEngine,
    Mdd1mEngine,
    ProgressiveEngine,
    SelectiveEngine,
    RandomInjectEngine,
);

/// Object-safe union of [`Engine`] and [`CrackAccess`], so update-capable
/// engines can be built dynamically from an [`EngineKind`]
/// ([`build_update_engine`]) and still compose with [`Updatable`].
pub trait UpdateEngine<E: Element>: Engine<E> + CrackAccess<E> {}

impl<E: Element, T: Engine<E> + CrackAccess<E>> UpdateEngine<E> for T {}

impl<E: Element> Engine<E> for Box<dyn UpdateEngine<E>> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.as_mut().select(q)
    }

    fn data(&self) -> &[E] {
        self.as_ref().data()
    }

    fn stats(&self) -> Stats {
        self.as_ref().stats()
    }

    fn reset_stats(&mut self) {
        self.as_mut().reset_stats();
    }

    fn quarantine_rebuild(&mut self) {
        self.as_mut().quarantine_rebuild();
    }
}

impl<E: Element> CrackAccess<E> for Box<dyn UpdateEngine<E>> {
    fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        self.as_mut().cracked_mut()
    }
}

/// Every [`EngineKind`] that owns a cracker column and therefore supports
/// updates — [`EngineKind::extended_selection`] minus the `Scan`/`Sort`
/// baselines, so the paper's zoo *and* the data-driven midpoint family.
pub fn update_capable_kinds() -> Vec<EngineKind> {
    EngineKind::extended_selection()
        .into_iter()
        .filter(|k| !matches!(k, EngineKind::Scan | EngineKind::Sort))
        .collect()
}

/// Builds an [`Updatable`] over any update-capable factory engine.
///
/// The mirror of [`scrack_core::build_engine`] for mixed read/write
/// workloads: the same kinds, seeds and [`CrackConfig`] knobs (including
/// [`scrack_core::UpdatePolicy`]), wrapped with an empty pending-update
/// queue.
///
/// # Panics
/// If `kind` is `Scan` or `Sort` (no cracker column to merge into).
pub fn build_update_engine<E: Element>(
    kind: EngineKind,
    data: Vec<E>,
    config: CrackConfig,
    seed: u64,
) -> Updatable<Box<dyn UpdateEngine<E>>, E> {
    let engine: Box<dyn UpdateEngine<E>> = match kind {
        EngineKind::Scan | EngineKind::Sort => {
            panic!("{} has no cracker column; updates are unsupported", kind.label())
        }
        EngineKind::Crack => Box::new(CrackEngine::new(data, config)),
        EngineKind::Ddc => Box::new(DdcEngine::new(data, config)),
        EngineKind::Ddr => Box::new(DdrEngine::new(data, config, seed)),
        EngineKind::Dd1c => Box::new(Dd1cEngine::new(data, config)),
        EngineKind::Dd1r => Box::new(Dd1rEngine::new(data, config, seed)),
        EngineKind::Mdd1r => Box::new(Mdd1rEngine::new(data, config, seed)),
        EngineKind::Ddm => Box::new(DdmEngine::new(data, config)),
        EngineKind::Dd1m => Box::new(Dd1mEngine::new(data, config)),
        EngineKind::Mdd1m => Box::new(Mdd1mEngine::new(data, config)),
        EngineKind::Progressive { swap_pct } => Box::new(ProgressiveEngine::new(
            data,
            config,
            seed,
            f64::from(swap_pct),
        )),
        EngineKind::EveryX { .. }
        | EngineKind::FlipCoin
        | EngineKind::Monitor { .. }
        | EngineKind::SizeThreshold
        | EngineKind::RandomInject { .. } => {
            return Updatable::new(build_selective_like(kind, data, config, seed));
        }
    };
    Updatable::new(engine)
}

/// The selective/naive kinds share enough construction shape to go
/// through one helper (keeps the match above readable).
fn build_selective_like<E: Element>(
    kind: EngineKind,
    data: Vec<E>,
    config: CrackConfig,
    seed: u64,
) -> Box<dyn UpdateEngine<E>> {
    use scrack_core::SelectivePolicy;
    match kind {
        EngineKind::EveryX { x } => Box::new(SelectiveEngine::new(
            data,
            config,
            seed,
            SelectivePolicy::EveryX(x),
        )),
        EngineKind::FlipCoin => Box::new(SelectiveEngine::new(
            data,
            config,
            seed,
            SelectivePolicy::FlipCoin(0.5),
        )),
        EngineKind::Monitor { threshold } => Box::new(SelectiveEngine::new(
            data,
            config,
            seed,
            SelectivePolicy::Monitor(threshold),
        )),
        EngineKind::SizeThreshold => Box::new(SelectiveEngine::new(
            data,
            config,
            seed,
            SelectivePolicy::SizeThreshold,
        )),
        EngineKind::RandomInject { every } => {
            Box::new(RandomInjectEngine::new(data, config, seed, every))
        }
        other => unreachable!("{other:?} handled by build_update_engine"),
    }
}

/// A cracking engine with a pending-update queue merged on demand.
///
/// This is the setup of the paper's Fig. 15 — updates interleave with
/// queries; each query first ripples in the pending updates qualifying
/// for its range, then proceeds as usual — generalized to the whole
/// engine zoo: any [`Engine`] exposing [`CrackAccess`] composes, under
/// either index representation and either
/// [`scrack_core::UpdatePolicy`]. Use [`build_update_engine`] to
/// construct one from an [`EngineKind`].
#[derive(Debug, Clone)]
pub struct Updatable<Eng, E> {
    engine: Eng,
    pending: PendingUpdates<E>,
}

impl<Eng, E> Updatable<Eng, E>
where
    E: Element,
    Eng: Engine<E> + CrackAccess<E>,
{
    /// Wraps an engine with an empty update queue.
    pub fn new(engine: Eng) -> Self {
        Self {
            engine,
            pending: PendingUpdates::new(),
        }
    }

    /// Queues an insertion (cost deferred to a qualifying query).
    pub fn insert(&mut self, elem: E) {
        self.pending.queue_insert(elem);
    }

    /// Queues a deletion.
    pub fn delete(&mut self, key: u64) {
        self.pending.queue_delete(key);
    }

    /// Pending updates not yet merged.
    pub fn pending_len(&self) -> usize {
        self.pending.pending_inserts() + self.pending.pending_deletes()
    }

    /// Merges every pending update now (a checkpoint), returning how many
    /// were applied.
    pub fn flush(&mut self) -> usize {
        self.pending.merge_all(self.engine.cracked_mut())
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &Eng {
        &self.engine
    }

    /// Full integrity check of the underlying cracker column (tests
    /// only; O(n)).
    pub fn check_integrity(&mut self) -> Result<(), String> {
        self.engine.cracked_mut().check_integrity()
    }
}

impl<Eng, E> CrackAccess<E> for Updatable<Eng, E>
where
    E: Element,
    Eng: Engine<E> + CrackAccess<E>,
{
    fn cracked_mut(&mut self) -> &mut CrackedColumn<E> {
        self.engine.cracked_mut()
    }
}

impl<Eng, E> Engine<E> for Updatable<Eng, E>
where
    E: Element,
    Eng: Engine<E> + CrackAccess<E>,
{
    fn name(&self) -> String {
        self.engine.name()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.pending.merge_qualifying(self.engine.cracked_mut(), q);
        self.engine.select(q)
    }

    fn data(&self) -> &[E] {
        self.engine.data()
    }

    fn stats(&self) -> Stats {
        self.engine.stats()
    }

    fn reset_stats(&mut self) {
        self.engine.reset_stats();
    }

    fn quarantine_rebuild(&mut self) {
        self.engine.quarantine_rebuild();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_core::{CrackConfig, UpdatePolicy};

    #[test]
    fn queries_see_queued_inserts_in_their_range() {
        let keys: Vec<u64> = (0..1000).map(|i| (i * 17) % 1000).collect();
        let mut eng = Updatable::new(CrackEngine::new(keys, CrackConfig::default()));
        eng.insert(500u64);
        eng.insert(501u64);
        eng.insert(2_000u64);
        assert_eq!(eng.pending_len(), 3);
        let out = eng.select(QueryRange::new(500, 502));
        // 500, 501 already existed once each; the inserts add one more of
        // each.
        assert_eq!(out.len(), 4);
        assert_eq!(eng.pending_len(), 1, "out-of-range insert stays pending");
    }

    #[test]
    fn deletes_hide_tuples_from_queries() {
        let keys: Vec<u64> = (0..100).collect();
        let mut eng = Updatable::new(Mdd1rEngine::new(keys, CrackConfig::default(), 1));
        eng.delete(42);
        let out = eng.select(QueryRange::new(40, 45));
        assert_eq!(out.keys_sorted(eng.data()), vec![40, 41, 43, 44]);
    }

    #[test]
    fn non_qualifying_updates_cost_nothing_now() {
        let keys: Vec<u64> = (0..10_000).collect();
        let mut eng = Updatable::new(CrackEngine::new(keys, CrackConfig::default()));
        // Prime some cracks.
        eng.select(QueryRange::new(4_000, 6_000));
        let before = eng.stats();
        for k in 0..100u64 {
            eng.insert(9_000 + k);
        }
        // A query far from the pending updates must not pay for them.
        let _ = eng.select(QueryRange::new(4_500, 4_510));
        let delta = eng.stats().since(&before);
        assert!(
            delta.swaps < 4_000,
            "query far from updates should not merge them (swaps {})",
            delta.swaps
        );
        assert_eq!(eng.pending_len(), 100);
    }

    #[test]
    fn every_update_capable_kind_builds_and_answers() {
        let data: Vec<u64> = (0..2_000).map(|i| (i * 13) % 2_000).collect();
        for kind in update_capable_kinds() {
            for policy in UpdatePolicy::ALL {
                let config = CrackConfig::default()
                    .with_crack_size(64)
                    .with_progressive_threshold(256)
                    .with_update(policy);
                let mut eng = build_update_engine(kind, data.clone(), config, 7);
                eng.insert(100u64);
                eng.insert(3_000u64); // beyond the original domain
                eng.delete(101);
                let out = eng.select(QueryRange::new(95, 110));
                // 95..110 minus deleted 101, plus duplicate 100.
                assert_eq!(out.len(), 15, "{} / {policy}", eng.name());
                let out = eng.select(QueryRange::new(2_990, 3_010));
                assert_eq!(out.len(), 1, "{} / {policy}: appended key", eng.name());
                eng.check_integrity().unwrap();
            }
        }
    }

    #[test]
    fn progressive_jobs_are_settled_before_merging() {
        // A progressive engine with a tiny budget holds partition jobs
        // across queries; merging updates must settle them first instead
        // of corrupting the cursors.
        let data: Vec<u64> = (0..50_000).map(|i| (i * 7_919) % 50_000).collect();
        let config = CrackConfig::default()
            .with_crack_size(64)
            .with_progressive_threshold(1_000);
        let mut eng = Updatable::new(ProgressiveEngine::new(data, config, 3, 1.0));
        let _ = eng.select(QueryRange::new(10_000, 10_100)); // starts a job
        eng.insert(10_050u64);
        eng.delete(10_060);
        let out = eng.select(QueryRange::new(10_000, 10_100));
        assert_eq!(out.len(), 100, "one insert, one delete");
        eng.check_integrity().unwrap();
    }

    #[test]
    fn flush_applies_everything() {
        let keys: Vec<u64> = (0..500).collect();
        let mut eng = Updatable::new(CrackEngine::new(keys, CrackConfig::default()));
        eng.insert(10_000u64);
        eng.delete(3);
        assert_eq!(eng.flush(), 2);
        assert_eq!(eng.pending_len(), 0);
        assert_eq!(eng.data().len(), 500);
        eng.check_integrity().unwrap();
    }

    #[test]
    fn build_update_engine_mirrors_the_core_factory() {
        // The "mirror of build_engine" contract: for every
        // update-capable kind, both factories must construct
        // identically-parameterized engines — same name, and (with no
        // updates queued) bit-identical answers and Stats over a query
        // stream. Catches silent drift between the two match arms.
        let data: Vec<u64> = (0..3_000).map(|i| (i * 31) % 3_000).collect();
        let queries: Vec<QueryRange> = (0..40u64)
            .map(|i| QueryRange::new((i * 523) % 2_500, (i * 523) % 2_500 + 1 + (i * 17) % 200))
            .collect();
        let config = CrackConfig::default()
            .with_crack_size(64)
            .with_progressive_threshold(256);
        for kind in update_capable_kinds() {
            let mut core = scrack_core::build_engine::<u64>(kind, data.clone(), config, 9);
            let mut upd = build_update_engine::<u64>(kind, data.clone(), config, 9);
            assert_eq!(core.name(), Engine::name(&upd), "{kind:?}: name drifted");
            for (qi, q) in queries.iter().enumerate() {
                let a = core.select(*q);
                let b = upd.select(*q);
                assert_eq!(
                    (a.len(), a.key_checksum(core.data())),
                    (b.len(), b.key_checksum(Engine::data(&upd))),
                    "{kind:?}: query {qi} diverged between factories"
                );
            }
            assert_eq!(core.stats(), Engine::stats(&upd), "{kind:?}: Stats drifted");
        }
    }

    #[test]
    #[should_panic(expected = "no cracker column")]
    fn scan_is_rejected() {
        let _ = build_update_engine::<u64>(
            EngineKind::Scan,
            vec![1, 2, 3],
            CrackConfig::default(),
            0,
        );
    }
}
