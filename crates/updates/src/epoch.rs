//! Epoch-stamped committed-update logs — the storage half of snapshot
//! visibility.
//!
//! The serving layers above this crate hand out **snapshot epochs**: a
//! session pinned at epoch `s` must see exactly the updates committed at
//! or before `s`, no matter how far the physical column has advanced
//! underneath it. [`EpochLog`] makes that cheap by splitting committed
//! state in two:
//!
//! * the **merged prefix** — ops with epoch `<=` [`EpochLog::merged_through`]
//!   have been physically merge-rippled into the cracked column and are
//!   visible in any scan of it;
//! * the **logged suffix** — ops newer than the watermark stay in the
//!   log, and a reader at snapshot `s` adds the *delta* of the slice
//!   `(merged_through, s]` on top of the physical answer
//!   ([`EpochLog::delta`]).
//!
//! The owner advances the watermark ([`EpochLog::merge_through`]) only
//! up to the **minimum active snapshot epoch**, so the physical column
//! never runs ahead of any live reader — quarantine rebuilds can then
//! scan the column freely without tearing a published snapshot.
//!
//! # Delete semantics
//!
//! The column is a multiset and deletes of absent keys evaporate (the
//! `PendingUpdates` contract). To keep replay deterministic, a delete's
//! fate is resolved **once, at commit time**, and recorded in the log as
//! [`LoggedOp::Delete`]`{hits}`: `hits == true` removes one instance when
//! merged and contributes `-1` to snapshot deltas; `hits == false` is a
//! no-op in both. Since the log replays in commit order, the merge-time
//! outcome always matches the commit-time resolution.

use crate::pending::PendingUpdates;
use scrack_core::CrackedColumn;
use scrack_types::{Element, QueryRange};

/// One committed operation, with delete fate resolved at commit time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoggedOp<E> {
    /// Insert one element.
    Insert(E),
    /// Delete one element with this key; `hits` records whether a live
    /// instance existed at commit time (false = evaporated).
    Delete {
        /// The targeted key.
        key: u64,
        /// Whether the delete found a victim when it committed.
        hits: bool,
    },
}

impl<E: Element> LoggedOp<E> {
    fn key(&self) -> u64 {
        match self {
            LoggedOp::Insert(e) => e.key(),
            LoggedOp::Delete { key, .. } => *key,
        }
    }
}

/// An epoch-stamped log of committed updates over one cracked column
/// (see module docs).
///
/// Entries are appended in commit order with non-decreasing epochs; the
/// merged watermark trails the oldest live snapshot.
#[derive(Debug, Clone, Default)]
pub struct EpochLog<E> {
    /// `(epoch, op)` in commit order; epochs non-decreasing.
    entries: Vec<(u64, LoggedOp<E>)>,
    /// Ops with epoch `<= merged_through` are in the physical column.
    merged_through: u64,
}

impl<E: Element> EpochLog<E> {
    /// An empty log with watermark 0 (epoch 0 = the base column).
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            merged_through: 0,
        }
    }

    /// Appends one commit's ops at `epoch`, in the commit's own order.
    ///
    /// # Panics
    /// If `epoch` is at or below the merged watermark, or below the last
    /// appended epoch (commit order must be epoch order).
    pub fn append(&mut self, epoch: u64, ops: impl IntoIterator<Item = LoggedOp<E>>) {
        assert!(
            epoch > self.merged_through,
            "epoch {epoch} already merged (watermark {})",
            self.merged_through
        );
        if let Some((last, _)) = self.entries.last() {
            assert!(*last <= epoch, "epochs must be non-decreasing");
        }
        self.entries.extend(ops.into_iter().map(|op| (epoch, op)));
    }

    /// The highest epoch whose ops are physically merged into the column.
    pub fn merged_through(&self) -> u64 {
        self.merged_through
    }

    /// Entries still in the log (not yet merged).
    pub fn unmerged_len(&self) -> usize {
        self.entries.len()
    }

    /// Net live instances of `key` contributed by logged (unmerged) ops
    /// up to and including `through_epoch` — the commit-time input for
    /// resolving a new delete's fate on top of the physical count.
    pub fn net_count(&self, key: u64, through_epoch: u64) -> i64 {
        self.entries
            .iter()
            .take_while(|(ep, _)| *ep <= through_epoch)
            .map(|(_, op)| match op {
                LoggedOp::Insert(e) if e.key() == key => 1,
                LoggedOp::Delete { key: k, hits: true } if *k == key => -1,
                _ => 0,
            })
            .sum()
    }

    /// Whether any logged op with epoch strictly after `snapshot`
    /// touches a key accepted by `in_write_set` — the first-committer-
    /// wins validation a committing transaction runs against each shard
    /// it wrote. (Ops merged into the column are always at or below the
    /// oldest live snapshot, so every possible conflict is still in the
    /// log.)
    pub fn conflicts_after(&self, snapshot: u64, mut in_write_set: impl FnMut(u64) -> bool) -> bool {
        self.entries
            .iter()
            .skip_while(|(ep, _)| *ep <= snapshot)
            .any(|(_, op)| in_write_set(op.key()))
    }

    /// `(count_delta, key_sum_delta)` that the logged slice
    /// `(merged_through, through_epoch]` contributes to a range query —
    /// what a snapshot reader at `through_epoch` adds on top of the
    /// physical column's aggregate.
    pub fn delta(&self, q: QueryRange, through_epoch: u64) -> (i64, u64) {
        let mut count = 0i64;
        let mut sum = 0u64;
        for (_, op) in self
            .entries
            .iter()
            .take_while(|(ep, _)| *ep <= through_epoch)
        {
            match op {
                LoggedOp::Insert(e) if q.contains(e.key()) => {
                    count += 1;
                    sum = sum.wrapping_add(e.key());
                }
                LoggedOp::Delete { key, hits: true } if q.contains(*key) => {
                    count -= 1;
                    sum = sum.wrapping_sub(*key);
                }
                _ => {}
            }
        }
        (count, sum)
    }

    /// Physically merges every logged op with epoch `<= watermark` into
    /// `col` (in commit order, via the [`PendingUpdates`] ripple paths,
    /// honoring the column's `UpdatePolicy`) and advances the watermark.
    /// Returns how many ops merged. A watermark at or below the current
    /// one is a no-op.
    ///
    /// The caller must ensure no live snapshot is pinned at an epoch
    /// below `watermark`; that is the serving layer's min-active gate.
    pub fn merge_through(&mut self, col: &mut CrackedColumn<E>, watermark: u64) -> usize {
        if watermark <= self.merged_through {
            return 0;
        }
        let cut = self
            .entries
            .partition_point(|(ep, _)| *ep <= watermark);
        let mut pending = PendingUpdates::new();
        for (_, op) in self.entries.drain(..cut) {
            match op {
                LoggedOp::Insert(e) => pending.queue_insert(e),
                LoggedOp::Delete { key, hits: true } => pending.queue_delete(key),
                // Commit-time resolution said this delete evaporated;
                // replaying it would be a no-op, skip the ripple.
                LoggedOp::Delete { hits: false, .. } => {}
            }
        }
        self.merged_through = watermark;
        pending.merge_all(col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_core::CrackConfig;

    fn column(n: u64) -> CrackedColumn<u64> {
        let keys: Vec<u64> = (0..n).map(|i| (i * 311) % n).collect();
        let mut col = CrackedColumn::new(keys, CrackConfig::default());
        col.crack_on(n / 2);
        col
    }

    fn physical(col: &CrackedColumn<u64>, q: QueryRange) -> (i64, u64) {
        col.data()
            .iter()
            .filter(|k| q.contains(**k))
            .fold((0i64, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k)))
    }

    fn snapshot(col: &CrackedColumn<u64>, log: &EpochLog<u64>, q: QueryRange, ep: u64) -> (i64, u64) {
        let (pc, ps) = physical(col, q);
        let (dc, ds) = log.delta(q, ep);
        (pc + dc, ps.wrapping_add(ds))
    }

    #[test]
    fn snapshots_see_exactly_their_prefix() {
        let col = column(100);
        let mut log = EpochLog::new();
        log.append(1, [LoggedOp::Insert(50u64)]);
        log.append(2, [LoggedOp::Delete { key: 50, hits: true }]);
        log.append(3, [LoggedOp::Insert(51u64), LoggedOp::Insert(52u64)]);
        let q = QueryRange::new(50, 53);
        let (base, _) = snapshot(&col, &log, q, 0);
        assert_eq!(snapshot(&col, &log, q, 1).0, base + 1, "epoch 1 sees the insert");
        assert_eq!(snapshot(&col, &log, q, 2).0, base, "epoch 2 sees the delete too");
        assert_eq!(snapshot(&col, &log, q, 3).0, base + 2);
    }

    #[test]
    fn merge_preserves_every_snapshot_from_the_watermark_up() {
        let mut col = column(200);
        let mut log = EpochLog::new();
        log.append(1, [LoggedOp::Insert(10u64), LoggedOp::Insert(190u64)]);
        log.append(2, [LoggedOp::Delete { key: 10, hits: true }]);
        log.append(3, [LoggedOp::Insert(11u64)]);
        let q = QueryRange::new(0, 200);
        let at2 = snapshot(&col, &log, q, 2);
        let at3 = snapshot(&col, &log, q, 3);
        // Merge through epoch 2 (min active snapshot = 2).
        let merged = log.merge_through(&mut col, 2);
        assert_eq!(merged, 3, "two inserts + one hitting delete");
        assert_eq!(log.merged_through(), 2);
        assert_eq!(log.unmerged_len(), 1);
        col.check_integrity().unwrap();
        assert_eq!(snapshot(&col, &log, q, 2), at2, "snapshot 2 unchanged by merge");
        assert_eq!(snapshot(&col, &log, q, 3), at3, "snapshot 3 unchanged by merge");
    }

    #[test]
    fn evaporated_deletes_are_noops_everywhere() {
        let mut col = column(100);
        let mut log = EpochLog::new();
        log.append(1, [LoggedOp::Delete { key: 9_999, hits: false }]);
        let q = QueryRange::new(0, u64::MAX);
        let before = snapshot(&col, &log, q, 0);
        assert_eq!(snapshot(&col, &log, q, 1), before);
        assert_eq!(log.merge_through(&mut col, 1), 0, "nothing to ripple");
        assert_eq!(col.data().len(), 100);
    }

    #[test]
    fn net_count_tracks_per_key_liveness() {
        let mut log = EpochLog::<u64>::new();
        log.append(1, [LoggedOp::Insert(7u64), LoggedOp::Insert(7u64)]);
        log.append(2, [LoggedOp::Delete { key: 7, hits: true }]);
        log.append(3, [LoggedOp::Delete { key: 7, hits: false }]);
        assert_eq!(log.net_count(7, 1), 2);
        assert_eq!(log.net_count(7, 2), 1);
        assert_eq!(log.net_count(7, 3), 1, "evaporated delete contributes 0");
        assert_eq!(log.net_count(8, 3), 0);
    }

    #[test]
    #[should_panic(expected = "already merged")]
    fn appending_below_the_watermark_is_rejected() {
        let mut col = column(10);
        let mut log = EpochLog::new();
        log.append(1, [LoggedOp::Insert(5u64)]);
        log.merge_through(&mut col, 1);
        log.append(1, [LoggedOp::Insert(6u64)]);
    }

    #[test]
    fn merge_is_idempotent_at_the_watermark() {
        let mut col = column(50);
        let mut log = EpochLog::new();
        log.append(1, [LoggedOp::Insert(25u64)]);
        assert_eq!(log.merge_through(&mut col, 1), 1);
        assert_eq!(log.merge_through(&mut col, 1), 0);
        assert_eq!(log.merge_through(&mut col, 0), 0);
    }
}
