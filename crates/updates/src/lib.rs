//! Updates for cracked columns: pending queues merged with Ripple.
//!
//! "Updates are marked and collected as pending updates upon arrival.
//! When a query Q requests values in a range where at least one pending
//! update falls, then the qualifying updates for the given query are
//! merged during cracking for Q. We use the Ripple algorithm to minimize
//! the cost of merging, i.e., reorganizing dense arrays in a column-store"
//! (Halim et al. 2012, §5, after Idreos et al., SIGMOD 2007).
//!
//! The Ripple idea: inserting into (or deleting from) the middle of a
//! cracked dense array only needs **one element move per piece boundary**
//! between the target piece and the array end — each piece donates its
//! edge slot to its neighbor, and crack positions shift by one. Piece
//! interiors are unordered, so moving an element from one edge of a piece
//! to the other preserves every invariant.
//!
//! Two merge strategies implement this model behind
//! [`scrack_core::UpdatePolicy`]:
//!
//! * **per-element** ([`ripple_insert`] / [`ripple_delete`]) — one full
//!   boundary walk per update, the reference implementation;
//! * **batched merge-ripple** ([`merge_ripple_inserts`] /
//!   [`merge_ripple_deletes`], the default) — the qualifying batch is
//!   sorted once and applied in a single boundary walk.
//!
//! [`PendingUpdates`] holds the queued inserts/deletes; [`Updatable`]
//! wraps any cracking `Engine` exposing [`CrackAccess`] (every
//! cracker-backed engine in the factory — build one with
//! [`build_update_engine`]) with on-demand merging. [`EpochLog`] adds
//! the committed, epoch-stamped form of the same queues: snapshot
//! readers combine the physical column with the log's per-epoch delta,
//! and a watermark merge (gated on the oldest live snapshot) folds aged
//! epochs into the column through the same ripple paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epoch;
mod merge;
mod pending;
mod ripple;
mod wrapper;

pub use epoch::{EpochLog, LoggedOp};
pub use merge::{merge_ripple_deletes, merge_ripple_inserts};
pub use pending::PendingUpdates;
pub use ripple::{ripple_delete, ripple_insert};
pub use wrapper::{
    build_update_engine, update_capable_kinds, CrackAccess, Updatable, UpdateEngine,
};
