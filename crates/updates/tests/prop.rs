//! Differential update tests: every update-capable engine, under every
//! `IndexPolicy` × `UpdatePolicy` combination, against a sorted-vec
//! oracle over random interleaved query/insert/delete streams.
//!
//! Two layers of guarantee:
//!
//! * **oracle equality** — after any interleaving, every query returns
//!   exactly the multiset of keys a sorted `Vec<u64>` model holds for the
//!   range (inserts add, deletes remove one instance, pending updates
//!   become visible to the first qualifying query);
//! * **policy invariance** — the per-element ripple and the batched
//!   merge-ripple produce *bit-identical answers* (count + checksum per
//!   query) under both index representations, with `check_integrity`
//!   holding after every step.

use proptest::prelude::*;
use scrack_core::{CrackConfig, Engine, EngineKind, IndexPolicy, UpdatePolicy};
use scrack_types::QueryRange;
use scrack_updates::{build_update_engine, update_capable_kinds};

const N: u64 = 2_000;
/// Update keys may land beyond the original domain (appends).
const KEY_SPAN: u64 = 3 * N / 2;

/// One step of an interleaved read/write stream.
#[derive(Clone, Debug)]
enum Op {
    Query(u64, u64),
    Insert(u64),
    Delete(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest stub has no weighted prop_oneof; repeating
    // the query arm approximates a 2:1:1 read/write mix.
    prop_oneof![
        (0u64..N, 1u64..300).prop_map(|(a, w)| Op::Query(a, w)),
        (0u64..N, 1u64..300).prop_map(|(a, w)| Op::Query(a, w)),
        (0u64..KEY_SPAN).prop_map(Op::Insert),
        (0u64..KEY_SPAN).prop_map(Op::Delete),
    ]
}

/// The sorted-vec oracle: the multiset of keys the column must hold once
/// all pending updates are merged.
struct Model {
    keys: Vec<u64>, // sorted
    pending_inserts: Vec<u64>,
    pending_deletes: Vec<u64>,
}

impl Model {
    fn new(data: &[u64]) -> Self {
        let mut keys = data.to_vec();
        keys.sort_unstable();
        Self {
            keys,
            pending_inserts: Vec::new(),
            pending_deletes: Vec::new(),
        }
    }

    fn insert(&mut self, k: u64) {
        self.pending_inserts.push(k);
    }

    fn delete(&mut self, k: u64) {
        self.pending_deletes.push(k);
    }

    /// Merges pending updates qualifying for `q` (inserts before
    /// deletes, mirroring the documented ordering invariant), then
    /// returns the range's `(count, key_sum)`.
    fn query(&mut self, q: QueryRange) -> (usize, u64) {
        let mut ins = Vec::new();
        self.pending_inserts.retain(|k| {
            let take = q.contains(*k);
            if take {
                ins.push(*k);
            }
            !take
        });
        for k in ins {
            let at = self.keys.partition_point(|x| *x < k);
            self.keys.insert(at, k);
        }
        let mut del = Vec::new();
        self.pending_deletes.retain(|k| {
            let take = q.contains(*k);
            if take {
                del.push(*k);
            }
            !take
        });
        for k in del {
            let at = self.keys.partition_point(|x| *x < k);
            if self.keys.get(at) == Some(&k) {
                self.keys.remove(at);
            }
        }
        let lo = self.keys.partition_point(|x| *x < q.low);
        let hi = self.keys.partition_point(|x| *x < q.high);
        let sum = self.keys[lo..hi].iter().fold(0u64, |s, k| s.wrapping_add(*k));
        (hi - lo, sum)
    }
}

fn column(salt: u64) -> Vec<u64> {
    let mut data: Vec<u64> = (0..N).collect();
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ salt;
    for i in (1..data.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.swap(i, (state % (i as u64 + 1)) as usize);
    }
    data
}

fn config(index: IndexPolicy, update: UpdatePolicy) -> CrackConfig {
    CrackConfig::default()
        .with_crack_size(64)
        .with_progressive_threshold(256)
        .with_index(index)
        .with_update(update)
}

/// Replays `ops` on one engine configuration, asserting every query
/// against the oracle and checking integrity after every step; returns
/// the per-query `(count, checksum)` trace for cross-policy comparison.
fn replay(
    ops: &[Op],
    kind: EngineKind,
    index: IndexPolicy,
    update: UpdatePolicy,
    seed: u64,
) -> Vec<(usize, u64)> {
    let data = column(seed);
    let mut model = Model::new(&data);
    let mut eng = build_update_engine(kind, data, config(index, update), seed);
    let mut answers = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Query(a, w) => {
                let q = QueryRange::new(a, a + w);
                let out = eng.select(q);
                let got = (out.len(), out.key_checksum(eng.data()));
                let want = model.query(q);
                assert_eq!(
                    got, want,
                    "{} / {index} / {update}: step {i} query {q} wrong",
                    eng.name()
                );
                answers.push(got);
            }
            Op::Insert(k) => {
                eng.insert(k);
                model.insert(k);
            }
            Op::Delete(k) => {
                eng.delete(k);
                model.delete(k);
            }
        }
        eng.check_integrity()
            .unwrap_or_else(|e| panic!("{kind:?} / {index} / {update}: step {i}: {e}"));
    }
    answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full differential matrix on the paper's two headline engines:
    /// random interleaved streams, all four policy combinations, oracle
    /// equality plus bit-identical answers across update policies.
    #[test]
    fn crack_and_mdd1r_match_oracle_and_policies_agree(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        seed in 0u64..1_000,
    ) {
        for kind in [EngineKind::Crack, EngineKind::Mdd1r] {
            for index in IndexPolicy::ALL {
                let per_elem = replay(&ops, kind, index, UpdatePolicy::PerElement, seed);
                let batched = replay(&ops, kind, index, UpdatePolicy::Batched, seed);
                prop_assert_eq!(
                    &per_elem, &batched,
                    "{:?}/{}: answers diverged across update policies", kind, index
                );
            }
        }
    }

    /// A rotating single-engine deep run so every update-capable kind in
    /// the factory sees random streams (the full matrix per case would
    /// square the runtime for no extra coverage).
    #[test]
    fn every_update_capable_engine_matches_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..50),
        seed in 0u64..1_000,
        // Wide range folded by `%` below, so every kind is reachable
        // however many kinds the factory grows to.
        kind_idx in 0usize..1_000,
    ) {
        let kinds = update_capable_kinds();
        let kind = kinds[kind_idx % kinds.len()];
        for update in UpdatePolicy::ALL {
            replay(&ops, kind, IndexPolicy::default(), update, seed);
        }
    }
}

/// The deterministic full matrix: every update-capable engine × both
/// index policies × both update policies on one fixed mixed stream, with
/// cross-policy bit-identity on the answers.
#[test]
fn full_matrix_policies_are_bit_identical() {
    let mut state = 0xD1B5_4A32_D192_ED03u64;
    let ops: Vec<Op> = (0..60)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match i % 7 {
                0..=2 => Op::Query(state % N, 1 + state % 250),
                3 | 4 => Op::Insert(state % KEY_SPAN),
                _ => Op::Delete(state % KEY_SPAN),
            }
        })
        .collect();
    for kind in update_capable_kinds() {
        let mut traces = Vec::new();
        for index in IndexPolicy::ALL {
            for update in UpdatePolicy::ALL {
                traces.push(replay(&ops, kind, index, update, 42));
            }
        }
        for t in &traces[1..] {
            assert_eq!(
                t, &traces[0],
                "{kind:?}: answers must be identical across all policy combinations"
            );
        }
    }
}
