//! Main-memory column-store substrate.
//!
//! Database cracking "relies on a number of modern column-store design
//! characteristics: columns stored one at a time in fixed-width dense
//! arrays … bulk processing … a select operator that physically reorganizes
//! the proper pieces of a column to bring all qualifying values in a
//! contiguous area and then returns a view of this area as the result"
//! (Halim et al. 2012, §2). This crate provides those pieces:
//!
//! * [`Column`] — a dense, fixed-width array of [`Element`]s;
//! * [`QueryOutput`] — a select result as a set of zero-copy views plus a
//!   materialized overflow (plain scans materialize everything; cracking
//!   returns one view; MDD1R returns fringes materialized + a middle view;
//!   the hybrids return several views);
//! * [`Table`] — a minimal multi-attribute table for tuple reconstruction
//!   through rowids, used by the examples.
//!
//! [`Element`]: scrack_types::Element

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod column;
mod result;
mod table;

pub use column::Column;
pub use result::QueryOutput;
pub use table::Table;
