//! Select results: zero-copy views plus materialized overflow.

use scrack_types::Element;

/// The result of a select operator over a (possibly cracked) column.
///
/// The paper's cost model distinguishes strategies by *how* they answer:
///
/// * `Crack` and `Sort` "can simply return a view of the (contiguous)
///   qualifying tuples" — one `(start, end)` view, no copying;
/// * `Scan` "has to materialize a new array with the result";
/// * MDD1R materializes the two fringe pieces and returns the middle as a
///   view (Fig. 6); the partition/merge hybrids answer with several views.
///
/// `QueryOutput` represents all of these uniformly as a list of views into
/// the engine's current buffer plus a materialized vector. Views are valid
/// until the next reorganizing operation on the column.
#[derive(Debug, Clone)]
pub struct QueryOutput<E> {
    views: Vec<(usize, usize)>,
    mat: Vec<E>,
}

impl<E> Default for QueryOutput<E> {
    fn default() -> Self {
        Self {
            views: Vec::new(),
            mat: Vec::new(),
        }
    }
}

impl<E: Element> QueryOutput<E> {
    /// An empty result.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A single-view result `[start, end)`.
    pub fn view(start: usize, end: usize) -> Self {
        let mut out = Self::default();
        out.push_view(start, end);
        out
    }

    /// A fully materialized result.
    pub fn materialized(mat: Vec<E>) -> Self {
        Self {
            views: Vec::new(),
            mat,
        }
    }

    /// Appends a view; empty views are dropped.
    pub fn push_view(&mut self, start: usize, end: usize) {
        if start < end {
            self.views.push((start, end));
        }
    }

    /// The materialized part, for engines that collect into it directly.
    pub fn mat_mut(&mut self) -> &mut Vec<E> {
        &mut self.mat
    }

    /// The views, in insertion order.
    pub fn views(&self) -> &[(usize, usize)] {
        &self.views
    }

    /// The materialized tuples.
    pub fn mat(&self) -> &[E] {
        &self.mat
    }

    /// Total number of qualifying tuples. Views are counted by width —
    /// O(1) per view, no data access, mirroring how a real column-store
    /// hands a view to the next operator.
    pub fn len(&self) -> usize {
        self.views.iter().map(|(s, e)| e - s).sum::<usize>() + self.mat.len()
    }

    /// Whether no tuple qualified.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all result elements, resolving views against `data`
    /// (the engine's current buffer).
    pub fn resolve<'a>(&'a self, data: &'a [E]) -> impl Iterator<Item = E> + 'a {
        self.views
            .iter()
            .flat_map(move |(s, e)| data[*s..*e].iter().copied())
            .chain(self.mat.iter().copied())
    }

    /// Sum of result keys modulo 2^64; an order-independent fingerprint
    /// used to validate engines against the scan oracle.
    pub fn key_checksum(&self, data: &[E]) -> u64 {
        self.resolve(data)
            .fold(0u64, |s, e| s.wrapping_add(e.key()))
    }

    /// All result keys, sorted; the strong (multiset) correctness check.
    pub fn keys_sorted(&self, data: &[E]) -> Vec<u64> {
        let mut keys: Vec<u64> = self.resolve(data).map(|e| e.key()).collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_output() {
        let out: QueryOutput<u64> = QueryOutput::empty();
        assert!(out.is_empty());
        assert_eq!(out.len(), 0);
        assert_eq!(out.resolve(&[]).count(), 0);
    }

    #[test]
    fn single_view_len_is_width() {
        let out: QueryOutput<u64> = QueryOutput::view(10, 25);
        assert_eq!(out.len(), 15);
    }

    #[test]
    fn empty_views_are_dropped() {
        let mut out: QueryOutput<u64> = QueryOutput::empty();
        out.push_view(5, 5);
        out.push_view(7, 6);
        assert!(out.views().is_empty());
        assert!(out.is_empty());
    }

    #[test]
    fn mixed_views_and_materialized_resolve_in_order() {
        let data: Vec<u64> = (0..20).collect();
        let mut out: QueryOutput<u64> = QueryOutput::empty();
        out.mat_mut().push(100);
        out.push_view(0, 2);
        out.push_view(10, 12);
        let got: Vec<u64> = out.resolve(&data).collect();
        assert_eq!(got, vec![0, 1, 10, 11, 100]);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn checksum_and_sorted_keys() {
        let data: Vec<u64> = vec![5, 1, 9, 7];
        let mut out: QueryOutput<u64> = QueryOutput::view(1, 3); // 1, 9
        out.mat_mut().push(4);
        assert_eq!(out.key_checksum(&data), 14);
        assert_eq!(out.keys_sorted(&data), vec![1, 4, 9]);
    }
}
