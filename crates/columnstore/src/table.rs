//! A minimal multi-attribute table for tuple reconstruction.

use crate::Column;
use scrack_types::Tuple;

/// A table of named `u64` attribute columns stored in insertion order.
///
/// Cracking reorganizes one attribute's copy; the original columns stay in
/// insertion order, so a qualifying rowid fetched from a cracked
/// [`Tuple`] column can positionally reconstruct the other attributes —
/// the column-store tuple reconstruction pattern the paper's sideways
/// cracking work builds on. This table intentionally stays small: it is
/// the substrate the examples use, not a full query processor.
#[derive(Debug, Clone, Default)]
pub struct Table {
    columns: Vec<(String, Vec<u64>)>,
    rows: usize,
}

impl Table {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Adds a column. All columns must have equal length.
    ///
    /// # Panics
    /// If the name is taken or the length disagrees with existing columns.
    pub fn add_column(&mut self, name: &str, values: Vec<u64>) {
        assert!(
            self.column(name).is_none(),
            "column {name:?} already exists"
        );
        if self.columns.is_empty() {
            self.rows = values.len();
        } else {
            assert_eq!(values.len(), self.rows, "column length mismatch");
        }
        self.columns.push((name.to_string(), values));
    }

    /// The raw values of a column, in insertion order.
    pub fn column(&self, name: &str) -> Option<&[u64]> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Builds the crackable copy of a column: key + rowid pairs.
    ///
    /// # Panics
    /// If the column does not exist.
    pub fn cracker_column(&self, name: &str) -> Column<Tuple> {
        let values = self.column(name).expect("unknown column");
        Column::from_keys(values.iter().copied())
    }

    /// Fetches `column[row]` for each rowid — positional tuple
    /// reconstruction after a cracked select.
    ///
    /// # Panics
    /// If the column does not exist or a rowid is out of range.
    pub fn fetch(&self, name: &str, rowids: impl IntoIterator<Item = u32>) -> Vec<u64> {
        let values = self.column(name).expect("unknown column");
        rowids.into_iter().map(|r| values[r as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new();
        t.add_column("ra", vec![30, 10, 20, 40]);
        t.add_column("dec", vec![300, 100, 200, 400]);
        t
    }

    #[test]
    fn columns_roundtrip() {
        let t = sample();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.column("ra").unwrap(), &[30, 10, 20, 40]);
        assert_eq!(t.column("dec").unwrap(), &[300, 100, 200, 400]);
        assert!(t.column("nope").is_none());
    }

    #[test]
    fn cracker_column_pairs_keys_with_rowids() {
        let t = sample();
        let col = t.cracker_column("ra");
        let pairs: Vec<(u64, u32)> = col.as_slice().iter().map(|t| (t.key, t.row)).collect();
        assert_eq!(pairs, vec![(30, 0), (10, 1), (20, 2), (40, 3)]);
    }

    #[test]
    fn fetch_reconstructs_other_attributes() {
        let t = sample();
        // Pretend a cracked select on "ra" returned rowids 1 and 2.
        assert_eq!(t.fetch("dec", [1u32, 2]), vec![100, 200]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_column_length_panics() {
        let mut t = sample();
        t.add_column("bad", vec![1]);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_name_panics() {
        let mut t = sample();
        t.add_column("ra", vec![1, 2, 3, 4]);
    }
}
