//! Dense fixed-width column arrays.

use scrack_types::{Element, QueryRange, Stats};

/// A dense, fixed-width array of elements — the unit cracking operates on.
///
/// The representation is identical in memory and on disk in the systems the
/// paper targets, "which allows for efficient physical reorganization of
/// arrays" (§2). `Column` owns its buffer; cracking engines take the buffer
/// over (via [`Column::into_vec`]) or reorganize it in place through
/// [`Column::as_mut_slice`].
#[derive(Debug, Clone, Default)]
pub struct Column<E> {
    data: Vec<E>,
}

impl<E: Element> Column<E> {
    /// A column over an existing buffer.
    pub fn from_vec(data: Vec<E>) -> Self {
        Self { data }
    }

    /// A column built from keys, assigning rowids in input order.
    pub fn from_keys(keys: impl IntoIterator<Item = u64>) -> Self {
        let data = keys
            .into_iter()
            .enumerate()
            .map(|(i, k)| E::from_key_row(k, i as u32))
            .collect();
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read access to the underlying buffer.
    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    /// Write access to the underlying buffer (for physical reorganization).
    pub fn as_mut_slice(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Consumes the column, yielding its buffer.
    pub fn into_vec(self) -> Vec<E> {
        self.data
    }

    /// The plain (non-cracking) select operator: one full scan that
    /// materializes every qualifying element into `out`.
    ///
    /// This is the paper's `Scan` baseline: it always touches all `N`
    /// tuples and "has to materialize a new array with the result" (§3).
    /// The qualifying test short-circuits on the first comparison, the
    /// detail the paper credits for `Scan`'s slight speedup on the
    /// sequential workload.
    pub fn scan_select(&self, q: QueryRange, out: &mut Vec<E>, stats: &mut Stats) -> usize {
        let before = out.len();
        for e in &self.data {
            let k = e.key();
            if q.low <= k && k < q.high {
                out.push(*e);
            }
        }
        stats.touched += self.data.len() as u64;
        stats.comparisons += self.data.len() as u64;
        let n = out.len() - before;
        stats.materialized += n as u64;
        n
    }

    /// Sum of all keys; a cheap content fingerprint for tests.
    pub fn key_checksum(&self) -> u64 {
        self.data.iter().fold(0u64, |s, e| s.wrapping_add(e.key()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_types::Tuple;

    #[test]
    fn from_keys_assigns_rowids_in_order() {
        let col: Column<Tuple> = Column::from_keys([30, 10, 20]);
        let rows: Vec<u32> = col.as_slice().iter().map(|t| t.row).collect();
        assert_eq!(rows, vec![0, 1, 2]);
        let keys: Vec<u64> = col.as_slice().iter().map(|t| t.key).collect();
        assert_eq!(keys, vec![30, 10, 20]);
    }

    #[test]
    fn scan_select_materializes_exact_matches() {
        let col: Column<u64> = Column::from_keys(0..100);
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let n = col.scan_select(QueryRange::new(10, 15), &mut out, &mut stats);
        assert_eq!(n, 5);
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
        assert_eq!(stats.touched, 100);
        assert_eq!(stats.materialized, 5);
    }

    #[test]
    fn scan_select_appends_to_existing_output() {
        let col: Column<u64> = Column::from_keys(0..10);
        let mut out = vec![99u64];
        let mut stats = Stats::new();
        let n = col.scan_select(QueryRange::new(0, 2), &mut out, &mut stats);
        assert_eq!(n, 2);
        assert_eq!(out, vec![99, 0, 1]);
    }

    #[test]
    fn empty_column() {
        let col: Column<u64> = Column::from_keys(std::iter::empty());
        assert!(col.is_empty());
        let mut out = Vec::new();
        let mut stats = Stats::new();
        assert_eq!(
            col.scan_select(QueryRange::new(0, 10), &mut out, &mut stats),
            0
        );
    }

    #[test]
    fn checksum_is_order_independent() {
        let a: Column<u64> = Column::from_keys([1, 2, 3]);
        let b: Column<u64> = Column::from_keys([3, 1, 2]);
        assert_eq!(a.key_checksum(), b.key_checksum());
    }
}
