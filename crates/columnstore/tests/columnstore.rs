//! Integration tests for the column-store substrate: the pieces work
//! *together* — a multi-column table feeding a crackable key/rowid
//! column, selects producing `QueryOutput`s, and rowid-based tuple
//! reconstruction round-tripping back through the table.
//!
//! The unit tests inside each module cover one type at a time; this
//! suite pins the cross-type workflow the examples and `scrack_query`
//! build on.

use scrack_columnstore::{Column, QueryOutput, Table};
use scrack_types::{QueryRange, Stats, Tuple};

/// A small star-catalog-shaped table: cracked attribute plus two payload
/// columns, in insertion order.
fn sample_table(rows: u64) -> Table {
    let mut t = Table::new();
    // "ra" is a permutation so physical order != key order.
    t.add_column("ra", (0..rows).map(|i| (i * 37) % rows).collect());
    t.add_column("dec", (0..rows).map(|i| i * 10).collect());
    t.add_column("mag", (0..rows).map(|i| 1_000 + i).collect());
    t
}

#[test]
fn multi_column_select_reconstructs_full_tuples() {
    let rows = 1_000u64;
    let t = sample_table(rows);
    let col: Column<Tuple> = t.cracker_column("ra");
    assert_eq!(col.len(), rows as usize);

    // A scan select over the cracker column stands in for any engine
    // (engines only reorder; the output contract is the same).
    let q = QueryRange::new(100, 150);
    let mut out_buf = Vec::new();
    let mut stats = Stats::new();
    let n = col.scan_select(q, &mut out_buf, &mut stats);
    assert_eq!(n, 50, "unique keys: one tuple per key in range");

    // Reconstruction round-trip: for every qualifying rowid, the other
    // attributes come back positionally and agree with the key column.
    let rowids: Vec<u32> = out_buf.iter().map(|t| t.row).collect();
    let ra = t.fetch("ra", rowids.iter().copied());
    let dec = t.fetch("dec", rowids.iter().copied());
    let mag = t.fetch("mag", rowids.iter().copied());
    for (i, tup) in out_buf.iter().enumerate() {
        assert!(q.contains(tup.key));
        assert_eq!(ra[i], tup.key, "key column round-trips through rowid");
        assert_eq!(dec[i], u64::from(tup.row) * 10, "payload 1 positional");
        assert_eq!(mag[i], 1_000 + u64::from(tup.row), "payload 2 positional");
    }
}

#[test]
fn query_output_views_and_materialized_resolve_against_reordered_buffer() {
    // The MDD1R-shaped result: fringes materialized, middle as a view —
    // over a buffer an engine has physically reordered.
    let rows = 100u64;
    let t = sample_table(rows);
    let mut col: Column<Tuple> = t.cracker_column("ra");

    // "Crack" by hand: partition the buffer on key < 40 | >= 40.
    let buf = col.as_mut_slice();
    buf.sort_unstable_by_key(|t| t.key); // most extreme reorder
    let boundary = buf.partition_point(|t| t.key < 40);

    let mut out: QueryOutput<Tuple> = QueryOutput::empty();
    out.push_view(boundary, boundary + 20); // keys 40..60 as a view
    out.mat_mut().push(buf[0]); // key 0, materialized fringe
    assert_eq!(out.len(), 21);

    let keys = out.keys_sorted(col.as_slice());
    let expect: Vec<u64> = std::iter::once(0).chain(40..60).collect();
    assert_eq!(keys, expect);

    // Checksum agrees with direct resolution, and reconstruction works
    // for view tuples exactly as for materialized ones.
    let sum: u64 = keys.iter().sum();
    assert_eq!(out.key_checksum(col.as_slice()), sum);
    let rowids: Vec<u32> = out.resolve(col.as_slice()).map(|t| t.row).collect();
    let ra = t.fetch("ra", rowids);
    let mut ra_sorted = ra.clone();
    ra_sorted.sort_unstable();
    assert_eq!(ra_sorted, expect, "reconstruction sees the same tuples");
}

#[test]
fn scan_select_checksum_is_reorder_invariant() {
    // The fingerprint tests and benches rely on: physical reorganization
    // never changes a column's content checksum or its scan answers.
    let t = sample_table(512);
    let mut col: Column<Tuple> = t.cracker_column("ra");
    let before_checksum = col.key_checksum();
    let q = QueryRange::new(17, 400);
    let mut out_a = Vec::new();
    let mut stats = Stats::new();
    col.scan_select(q, &mut out_a, &mut stats);

    col.as_mut_slice().reverse();
    col.as_mut_slice().rotate_left(37);
    assert_eq!(col.key_checksum(), before_checksum);
    let mut out_b = Vec::new();
    col.scan_select(q, &mut out_b, &mut stats);
    let key = |v: &[Tuple]| {
        let mut ks: Vec<(u64, u32)> = v.iter().map(|t| (t.key, t.row)).collect();
        ks.sort_unstable();
        ks
    };
    assert_eq!(key(&out_a), key(&out_b));
    assert_eq!(stats.touched, 2 * 512);
}

#[test]
fn empty_table_and_empty_ranges_compose() {
    let t = Table::new();
    assert_eq!(t.rows(), 0);
    assert!(t.column("ra").is_none());

    let col: Column<u64> = Column::from_keys(std::iter::empty());
    let mut out = Vec::new();
    let mut stats = Stats::new();
    assert_eq!(col.scan_select(QueryRange::new(0, 100), &mut out, &mut stats), 0);
    let qo: QueryOutput<u64> = QueryOutput::empty();
    assert_eq!(qo.resolve(col.as_slice()).count(), 0);
    assert_eq!(qo.key_checksum(col.as_slice()), 0);
}
