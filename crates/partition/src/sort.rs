//! Introsort and binary search: the `Sort` full-index baseline substrate.
//!
//! The paper's `Sort` strategy "completely sorts the column with the first
//! query" and answers every later query with binary search (§3). The C++
//! original uses `std::sort`, i.e. Musser's introsort; this is a
//! from-scratch implementation of the same algorithm: quicksort with
//! median-of-3 pivots, heapsort under a depth budget, insertion sort for
//! small runs.

use scrack_types::{Element, Stats};

/// Runs at or below this length are insertion-sorted.
const SORT_INSERTION_CUTOFF: usize = 24;

/// Sorts `data` ascending by key. Worst-case `O(n log n)` (introsort).
pub fn introsort<E: Element>(data: &mut [E], stats: &mut Stats) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let depth_budget = 2 * (usize::BITS - n.leading_zeros());
    introsort_rec(data, depth_budget, stats);
    debug_assert!(is_sorted_by_key(data));
}

fn introsort_rec<E: Element>(data: &mut [E], depth_budget: u32, stats: &mut Stats) {
    let mut slice = data;
    let mut budget = depth_budget;
    loop {
        let n = slice.len();
        if n <= SORT_INSERTION_CUTOFF {
            insertion_sort(slice, stats);
            return;
        }
        if budget == 0 {
            heapsort(slice, stats);
            return;
        }
        budget -= 1;
        let pivot = median3_key(slice, stats);
        let (lt, gt) = partition3_by_key(slice, pivot, stats);
        // Recurse into the smaller side, loop on the larger: O(log n) stack.
        if lt < n - gt {
            let (left, rest) = slice.split_at_mut(lt);
            introsort_rec(left, budget, stats);
            slice = &mut rest[gt - lt..];
        } else {
            let (rest, right) = slice.split_at_mut(gt);
            introsort_rec(right, budget, stats);
            slice = &mut rest[..lt];
        }
    }
}

#[inline]
fn median3_key<E: Element>(data: &[E], stats: &mut Stats) -> u64 {
    let n = data.len();
    let a = data[0].key();
    let b = data[n / 2].key();
    let c = data[n - 1].key();
    stats.comparisons += 3;
    a.max(b).min(a.min(b).max(c))
}

/// Dutch-flag partition identical to the one in `select_k`, duplicated here
/// privately to keep the two modules independently readable.
fn partition3_by_key<E: Element>(data: &mut [E], v: u64, stats: &mut Stats) -> (usize, usize) {
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = data.len();
    let mut touched = 0u64;
    let mut swaps = 0u64;
    while i < gt {
        let k = data[i].key();
        touched += 1;
        if k < v {
            if i != lt {
                data.swap(i, lt);
                swaps += 1;
            }
            lt += 1;
            i += 1;
        } else if k > v {
            gt -= 1;
            data.swap(i, gt);
            swaps += 1;
        } else {
            i += 1;
        }
    }
    stats.touched += touched;
    stats.comparisons += touched;
    stats.swaps += swaps;
    (lt, gt)
}

/// Simple binary insertion-free insertion sort for small runs; also used by
/// the BFPRT chunk step in `select_k`.
pub(crate) fn insertion_sort<E: Element>(data: &mut [E], stats: &mut Stats) {
    let mut comparisons = 0u64;
    let mut swaps = 0u64;
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 {
            comparisons += 1;
            if data[j - 1].key() <= data[j].key() {
                break;
            }
            data.swap(j - 1, j);
            swaps += 1;
            j -= 1;
        }
    }
    stats.touched += data.len() as u64;
    stats.comparisons += comparisons;
    stats.swaps += swaps;
}

fn heapsort<E: Element>(data: &mut [E], stats: &mut Stats) {
    let n = data.len();
    for i in (0..n / 2).rev() {
        sift_down(data, i, n, stats);
    }
    for end in (1..n).rev() {
        data.swap(0, end);
        stats.swaps += 1;
        sift_down(data, 0, end, stats);
    }
    stats.touched += n as u64;
}

fn sift_down<E: Element>(data: &mut [E], mut root: usize, end: usize, stats: &mut Stats) {
    loop {
        let mut child = 2 * root + 1;
        if child >= end {
            return;
        }
        if child + 1 < end {
            stats.comparisons += 1;
            if data[child].key() < data[child + 1].key() {
                child += 1;
            }
        }
        stats.comparisons += 1;
        if data[root].key() >= data[child].key() {
            return;
        }
        data.swap(root, child);
        stats.swaps += 1;
        root = child;
    }
}

/// Whether `data` is ascending by key.
pub fn is_sorted_by_key<E: Element>(data: &[E]) -> bool {
    data.windows(2).all(|w| w[0].key() <= w[1].key())
}

/// First position whose key is `>= key` in sorted `data` (a.k.a.
/// `lower_bound`). The `Sort` baseline answers `[a, b)` as the view
/// `[lower_bound(a), lower_bound(b))`.
pub fn lower_bound<E: Element>(data: &[E], key: u64, stats: &mut Stats) -> usize {
    let mut lo = 0usize;
    let mut hi = data.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        stats.comparisons += 1;
        stats.touched += 1;
        if data[mid].key() < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// First position whose key is `> key` in sorted `data`.
pub fn upper_bound<E: Element>(data: &[E], key: u64, stats: &mut Stats) -> usize {
    let mut lo = 0usize;
    let mut hi = data.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        stats.comparisons += 1;
        stats.touched += 1;
        if data[mid].key() <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_types::Tuple;

    #[test]
    fn sorts_permutations() {
        for n in [0usize, 1, 2, 24, 25, 100, 1000, 4096] {
            let mut d: Vec<u64> = (0..n as u64)
                .map(|i| (i * 2654435761) % n.max(1) as u64)
                .collect();
            let mut expect = d.clone();
            expect.sort_unstable();
            let mut stats = Stats::new();
            introsort(&mut d, &mut stats);
            assert_eq!(d, expect, "n={n}");
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        let mut asc: Vec<u64> = (0..2000).collect();
        let mut stats = Stats::new();
        introsort(&mut asc, &mut stats);
        assert!(is_sorted_by_key(&asc));

        let mut desc: Vec<u64> = (0..2000).rev().collect();
        introsort(&mut desc, &mut stats);
        assert!(is_sorted_by_key(&desc));

        let mut equal = vec![42u64; 2000];
        introsort(&mut equal, &mut stats);
        assert!(is_sorted_by_key(&equal));

        let mut organ: Vec<u64> = (0..1000).chain((0..1000).rev()).collect();
        introsort(&mut organ, &mut stats);
        assert!(is_sorted_by_key(&organ));
    }

    #[test]
    fn heapsort_fallback_directly() {
        let mut d: Vec<u64> = (0..500).rev().collect();
        let mut stats = Stats::new();
        heapsort(&mut d, &mut stats);
        assert!(is_sorted_by_key(&d));
    }

    #[test]
    fn tuples_sort_by_key_keeping_rows() {
        let mut d: Vec<Tuple> = (0..100u32)
            .map(|i| Tuple::new((997 * i as u64) % 100, i))
            .collect();
        let mut stats = Stats::new();
        introsort(&mut d, &mut stats);
        assert!(is_sorted_by_key(&d));
        for t in &d {
            assert_eq!((997 * t.row as u64) % 100, t.key);
        }
    }

    #[test]
    fn bounds_on_sorted_data() {
        let d: Vec<u64> = vec![1, 3, 3, 3, 7, 9];
        let mut stats = Stats::new();
        assert_eq!(lower_bound(&d, 0, &mut stats), 0);
        assert_eq!(lower_bound(&d, 3, &mut stats), 1);
        assert_eq!(upper_bound(&d, 3, &mut stats), 4);
        assert_eq!(lower_bound(&d, 8, &mut stats), 5);
        assert_eq!(lower_bound(&d, 10, &mut stats), 6);
        assert_eq!(upper_bound(&d, 10, &mut stats), 6);
        assert_eq!(lower_bound(&[] as &[u64], 5, &mut stats), 0);
    }

    #[test]
    fn lower_bound_equals_std_partition_point() {
        let d: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let mut stats = Stats::new();
        for key in [0u64, 1, 2, 3, 1497, 2997, 5000] {
            assert_eq!(
                lower_bound(&d, key, &mut stats),
                d.partition_point(|e| *e < key),
                "key={key}"
            );
        }
    }
}
