//! Three-way partitioning for range selects whose bounds share a piece.

use scrack_types::{Element, Stats};

/// Partitions `data` into `key < a` | `a <= key < b` | `key >= b`.
///
/// Returns `(p1, p2)` such that `data[..p1]` holds keys `< a`,
/// `data[p1..p2]` holds keys in `[a, b)`, and `data[p2..]` holds keys
/// `>= b`. Requires `a <= b`.
///
/// This is the single-pass split the first query of Fig. 1 performs: the
/// select `[a, b)` over an uncracked piece yields three pieces and the
/// qualifying tuples end up in a contiguous area. It costs one inspection
/// per element plus one extra inspection per element relocated from the
/// tail (the classic Dutch-national-flag trade-off), which the `touched`
/// counter reflects precisely.
#[inline]
pub fn crack_in_three<E: Element>(
    data: &mut [E],
    a: u64,
    b: u64,
    stats: &mut Stats,
) -> (usize, usize) {
    debug_assert!(a <= b, "crack_in_three requires a <= b");
    let mut lo = 0usize; // next slot of the < a region
    let mut i = 0usize; // scan cursor
    let mut hi = data.len(); // start of the >= b region
    let mut touched = 0u64;
    let mut swaps = 0u64;
    while i < hi {
        let k = data[i].key();
        touched += 1;
        if k < a {
            if i != lo {
                data.swap(i, lo);
                swaps += 1;
            }
            lo += 1;
            i += 1;
        } else if k >= b {
            hi -= 1;
            data.swap(i, hi);
            swaps += 1;
            // data[i] now holds an unexamined element; do not advance i.
        } else {
            i += 1;
        }
    }
    stats.touched += touched;
    stats.comparisons += touched;
    stats.swaps += swaps;
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(data: &mut [u64], a: u64, b: u64) -> (usize, usize) {
        let mut before: Vec<u64> = data.to_vec();
        before.sort_unstable();
        let mut stats = Stats::new();
        let (p1, p2) = crack_in_three(data, a, b, &mut stats);
        assert!(p1 <= p2 && p2 <= data.len());
        assert!(data[..p1].iter().all(|e| *e < a));
        assert!(data[p1..p2].iter().all(|e| a <= *e && *e < b));
        assert!(data[p2..].iter().all(|e| *e >= b));
        let mut after: Vec<u64> = data.to_vec();
        after.sort_unstable();
        assert_eq!(before, after);
        (p1, p2)
    }

    #[test]
    fn empty() {
        let mut d: [u64; 0] = [];
        assert_eq!(check(&mut d, 3, 7), (0, 0));
    }

    #[test]
    fn paper_figure_1_first_query() {
        // Q1 from Fig. 1: select 10 < A < 14 over the example column,
        // normalized to the half-open range [11, 14).
        let mut d = [13u64, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6];
        let (p1, p2) = check(&mut d, 11, 14);
        // Keys 11, 12, 13 qualify.
        let mut mid: Vec<u64> = d[p1..p2].to_vec();
        mid.sort_unstable();
        assert_eq!(mid, vec![11, 12, 13]);
    }

    #[test]
    fn degenerate_equal_bounds() {
        let mut d = [5u64, 1, 9, 5];
        let (p1, p2) = check(&mut d, 5, 5);
        assert_eq!(p1, p2, "empty range yields empty middle");
    }

    #[test]
    fn whole_domain() {
        let mut d = [5u64, 1, 9];
        let (p1, p2) = check(&mut d, 0, 100);
        assert_eq!((p1, p2), (0, 3));
    }

    #[test]
    fn bounds_outside_data() {
        let mut d = [5u64, 1, 9];
        assert_eq!(check(&mut d, 100, 200), (3, 3));
        let mut d = [5u64, 1, 9];
        assert_eq!(check(&mut d, 0, 1), (0, 0));
    }

    #[test]
    fn random_permutation() {
        let mut d: Vec<u64> = (0..257).map(|i| (i * 101) % 257).collect();
        let (p1, p2) = check(&mut d, 50, 150);
        assert_eq!(p1, 50);
        assert_eq!(p2, 150);
    }

    #[test]
    fn duplicates_on_both_bounds() {
        let mut d = [3u64, 7, 3, 7, 5, 3, 7];
        let (p1, p2) = check(&mut d, 3, 7);
        assert_eq!(p1, 0);
        assert_eq!(p2, 4); // three 3s and one 5 qualify
    }
}
