//! Progressive (budgeted) partitioning: one crack shared by many queries.

use crate::materialize::Fringe;
use scrack_types::{Element, Stats};

/// An in-flight partition of one piece of the cracker column.
///
/// Progressive stochastic cracking (PMDD1R, §4) limits the number of swaps
/// a single query may perform. A partition that cannot finish within its
/// budget is suspended in a `PartitionJob` stored in the piece's metadata;
/// the next query touching the piece resumes it.
///
/// Positions are **absolute** indexes into the cracker column. The settled
/// regions are `[piece_start, l)` (keys `< pivot`) and `[r, piece_end)`
/// (keys `>= pivot`); the unprocessed middle is `[l, r)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionJob {
    /// The random pivot chosen when the job was created.
    pub pivot: u64,
    /// Left cursor: start of the unprocessed middle (absolute).
    pub l: usize,
    /// Right cursor: end of the unprocessed middle (absolute, exclusive).
    pub r: usize,
}

impl PartitionJob {
    /// Creates a job covering the whole piece `[start, end)`.
    pub fn new(pivot: u64, start: usize, end: usize) -> Self {
        debug_assert!(start <= end);
        Self {
            pivot,
            l: start,
            r: end,
        }
    }

    /// Whether no unprocessed middle remains.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.l >= self.r
    }
}

/// Outcome of [`advance_job`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The partition completed; a crack `(job.pivot, crack_pos)` now holds.
    Done {
        /// Absolute position of the new boundary.
        crack_pos: usize,
    },
    /// The swap budget ran out; the job records the remaining middle.
    InProgress,
}

/// Resumes a partition job, performing at most `budget_swaps` exchanges.
///
/// Every element the cursors visit is filter-checked against `fringe` and
/// appended to `out` if it qualifies, exactly as in
/// [`split_and_materialize`](crate::split_and_materialize) — progressive
/// cracking is MDD1R with a swap budget. On return:
///
/// * [`JobStatus::Done`] — the piece is fully partitioned around
///   `job.pivot`; the caller should insert the crack and clear the job.
///   All middle elements were visited (and filtered) by this call.
/// * [`JobStatus::InProgress`] — the budget was exhausted. The elements in
///   the *new* `[job.l, job.r)` middle were **not** yet filtered by this
///   call; the caller must [`scan_filter`](crate::scan_filter) them to
///   finish answering the current query.
///
/// `data` is the whole column; the job's cursors are absolute positions.
pub fn advance_job<E: Element>(
    data: &mut [E],
    job: &mut PartitionJob,
    budget_swaps: u64,
    fringe: Fringe,
    out: &mut Vec<E>,
    stats: &mut Stats,
) -> JobStatus {
    let pivot = job.pivot;
    let mut l = job.l;
    let mut r = job.r;
    let mut swaps = 0u64;
    let mut visited = 0u64;
    let mut materialized = 0u64;
    let status = loop {
        while l < r {
            let k = data[l].key();
            if k >= pivot {
                break;
            }
            visited += 1;
            if fringe.keeps(k) {
                out.push(data[l]);
                materialized += 1;
            }
            l += 1;
        }
        while l < r {
            let k = data[r - 1].key();
            if k < pivot {
                break;
            }
            visited += 1;
            if fringe.keeps(k) {
                out.push(data[r - 1]);
                materialized += 1;
            }
            r -= 1;
        }
        if l >= r {
            break JobStatus::Done { crack_pos: l };
        }
        if swaps >= budget_swaps {
            // The misplaced elements at l and r-1 stay unvisited; they
            // remain inside the middle for the caller's residual scan.
            break JobStatus::InProgress;
        }
        let (kl, kr) = (data[l].key(), data[r - 1].key());
        visited += 2;
        if fringe.keeps(kl) {
            out.push(data[l]);
            materialized += 1;
        }
        if fringe.keeps(kr) {
            out.push(data[r - 1]);
            materialized += 1;
        }
        data.swap(l, r - 1);
        swaps += 1;
        l += 1;
        r -= 1;
    };
    job.l = l;
    job.r = r;
    stats.touched += visited;
    stats.comparisons += 2 * visited;
    stats.swaps += swaps;
    stats.materialized += materialized;
    status
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::scan_filter;
    use scrack_types::QueryRange;

    fn sorted(mut v: Vec<u64>) -> Vec<u64> {
        v.sort_unstable();
        v
    }

    #[test]
    fn unlimited_budget_equals_full_partition() {
        let mut d: Vec<u64> = (0..50).rev().collect();
        let orig = sorted(d.clone());
        let mut job = PartitionJob::new(25, 0, d.len());
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let status = advance_job(
            &mut d,
            &mut job,
            u64::MAX,
            Fringe::None,
            &mut out,
            &mut stats,
        );
        assert_eq!(status, JobStatus::Done { crack_pos: 25 });
        assert!(d[..25].iter().all(|e| *e < 25));
        assert!(d[25..].iter().all(|e| *e >= 25));
        assert_eq!(sorted(d), orig);
    }

    #[test]
    fn budgeted_run_preserves_invariants_and_finishes() {
        let mut d: Vec<u64> = (0..100).rev().collect();
        let orig = sorted(d.clone());
        let mut job = PartitionJob::new(40, 0, d.len());
        let mut stats = Stats::new();
        let mut rounds = 0;
        loop {
            let mut out = Vec::new();
            let status = advance_job(&mut d, &mut job, 5, Fringe::None, &mut out, &mut stats);
            // Settled regions must always respect the pivot.
            assert!(d[..job.l].iter().all(|e| *e < 40));
            assert!(d[job.r..].iter().all(|e| *e >= 40));
            rounds += 1;
            if let JobStatus::Done { crack_pos } = status {
                assert_eq!(crack_pos, 40);
                break;
            }
            assert!(rounds < 100, "job must terminate");
        }
        assert!(rounds > 1, "budget of 5 swaps must need several rounds");
        assert_eq!(sorted(d), orig);
    }

    #[test]
    fn each_query_sees_every_qualifying_tuple_exactly_once() {
        // Simulates the PMDD1R answering protocol across several queries:
        // prefix/suffix scan + advance + residual middle scan must together
        // yield the exact result set, every round.
        let mut d: Vec<u64> = (0..200).map(|i| (i * 67) % 200).collect();
        let q = QueryRange::new(50, 150);
        let expected: Vec<u64> = {
            let mut v: Vec<u64> = d.iter().copied().filter(|k| q.contains(*k)).collect();
            v.sort_unstable();
            v
        };
        let mut job = PartitionJob::new(100, 0, d.len());
        let mut stats = Stats::new();
        let mut done = false;
        let mut rounds = 0;
        while !done {
            let mut out = Vec::new();
            // Settled regions from previous rounds.
            scan_filter(&d[..job.l], Fringe::Both(q), &mut out, &mut stats);
            scan_filter(&d[job.r..], Fringe::Both(q), &mut out, &mut stats);
            let status = advance_job(&mut d, &mut job, 7, Fringe::Both(q), &mut out, &mut stats);
            if status == JobStatus::InProgress {
                scan_filter(&d[job.l..job.r], Fringe::Both(q), &mut out, &mut stats);
            } else {
                done = true;
            }
            assert_eq!(sorted(out), expected, "round {rounds} lost or duped tuples");
            rounds += 1;
            assert!(rounds < 200);
        }
        assert!(rounds > 1);
    }

    #[test]
    fn zero_budget_makes_no_swaps_but_may_advance_cursors() {
        let mut d: Vec<u64> = vec![1, 2, 30, 3, 40];
        let mut job = PartitionJob::new(10, 0, d.len());
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let status = advance_job(&mut d, &mut job, 0, Fringe::None, &mut out, &mut stats);
        assert_eq!(status, JobStatus::InProgress);
        assert_eq!(stats.swaps, 0);
        assert_eq!(job.l, 2, "cursor skips already-placed prefix");
        assert_eq!(d, vec![1, 2, 30, 3, 40], "no reorganization happened");
    }

    #[test]
    fn empty_piece_is_immediately_done() {
        let mut d: Vec<u64> = vec![];
        let mut job = PartitionJob::new(10, 0, 0);
        let mut out = Vec::new();
        let mut stats = Stats::new();
        assert_eq!(
            advance_job(&mut d, &mut job, 10, Fringe::None, &mut out, &mut stats),
            JobStatus::Done { crack_pos: 0 }
        );
    }

    #[test]
    fn job_on_subrange_uses_absolute_positions() {
        let mut d: Vec<u64> = vec![100, 101, 9, 1, 8, 2, 102];
        let mut job = PartitionJob::new(5, 2, 6);
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let status = advance_job(
            &mut d,
            &mut job,
            u64::MAX,
            Fringe::None,
            &mut out,
            &mut stats,
        );
        assert_eq!(status, JobStatus::Done { crack_pos: 4 });
        assert!(d[2..4].iter().all(|e| *e < 5));
        assert!(d[4..6].iter().all(|e| *e >= 5));
        assert_eq!(d[0], 100);
        assert_eq!(d[6], 102);
    }
}
