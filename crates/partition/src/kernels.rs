//! Branchless / predicated variants of the reorganization primitives, and
//! the kernel-selection policy that picks between them.
//!
//! Every engine in the paper bottoms out in the same three primitives —
//! [`crack_in_two`], [`crack_in_three`], [`scan_filter`] — whose classic
//! implementations branch on a comparison against the pivot for every
//! element. On random data that branch is taken ~50% of the time, i.e. it
//! is unpredictable, and the resulting mispredictions dominate the cost of
//! the pass. The multi-core adaptive-indexing follow-up (Alvarez et al.)
//! identifies predication as the prerequisite for making cracking kernels
//! run at memory speed; this module provides those predicated variants:
//!
//! * [`crack_in_two_branchless`] — a blockwise two-ended partition in the
//!   style of BlockQuicksort: misplaced-element offsets are collected with
//!   pure `(key < pivot) as usize` cursor arithmetic over fixed-width
//!   chunks from both ends, then exchanged pairwise. The exchange pairing
//!   replicates the Hoare pass exactly, so the result (boundary, physical
//!   order, swap count) is **bit-identical** to [`crack_in_two`].
//! * [`crack_in_three_branchless`] — the Dutch-national-flag pass with the
//!   per-element three-way branch replaced by an arithmetically selected
//!   swap target; state evolution is identical to [`crack_in_three`].
//! * [`scan_filter_branchless`] — a two-pass count-then-fill filter: a
//!   branch-free (auto-vectorizable) counting pass sizes the output
//!   exactly, then a cursor-arithmetic fill pass writes it without any
//!   per-element branch or reallocation.
//!
//! All variants keep the `Stats` contract of their branchy twins to the
//! counter: `touched`/`comparisons` follow the paper's §3 convention of
//! charging one logical inspection per element (independent of physical
//! passes), and `swaps` counts the same exchanges in the same order.
//!
//! [`KernelPolicy`] selects a variant per call; [`crack_in_two_policy`],
//! [`crack_in_three_policy`] and [`scan_filter_policy`] are the dispatch
//! points the engines route through.

use crate::materialize::{scan_filter, Fringe};
use crate::three_way::crack_in_three;
use crate::two_way::{crack_in_two, hoare_partition};
use scrack_types::{Element, Stats};

/// Width of the fixed chunks the blockwise two-way partition processes
/// from each end. 128 offsets fit a `u8` index array comfortably in
/// registers/L1 while amortizing the loop bookkeeping.
pub const KERNEL_BLOCK: usize = 128;

/// Piece size (in elements) above which [`KernelPolicy::Auto`] picks the
/// branchless two-way and filter kernels.
///
/// A fixed, bench-measured crossover (not derived from
/// `CacheProfile` — the switch point is set by branch-misprediction
/// economics, which the `kernels` bench measures directly, rather than
/// by cache geometry): below it the scalar loop's mispredictions are
/// cheap relative to the blockwise bookkeeping; above it the predicated
/// kernels win (see `BENCH_2.json`). Retune by rerunning
/// `scrack_bench --sizes ...` on the target machine.
pub const AUTO_BRANCHLESS_THRESHOLD: usize = 4096;

/// [`KernelPolicy::Auto`]'s threshold for the *three-way* kernel, whose
/// predicated variant pays an unconditional exchange per element and only
/// overtakes the branchy pass on pieces too big for L1 (measured
/// crossover ≈ 8K elements on x86-64; see `BENCH_2.json`).
pub const AUTO_BRANCHLESS_THREE_WAY_THRESHOLD: usize = 8192;

/// Which implementation of the reorganization primitives to run.
///
/// Both variants produce bit-identical results (boundaries, physical
/// order, stats), so the policy is purely a performance knob and can be
/// changed between queries without affecting any answer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelPolicy {
    /// The classic loops with data-dependent branches (the seed kernels).
    Branchy,
    /// The predicated/blockwise kernels of this module.
    Branchless,
    /// Branchless for pieces of at least [`AUTO_BRANCHLESS_THRESHOLD`]
    /// elements, branchy below.
    #[default]
    Auto,
}

impl KernelPolicy {
    /// Whether a piece of `len` elements should take the branchless path
    /// (two-way and filter kernels).
    #[inline(always)]
    pub fn use_branchless(self, len: usize) -> bool {
        self.use_branchless_above(len, AUTO_BRANCHLESS_THRESHOLD)
    }

    /// Whether a piece of `len` elements should take the branchless
    /// three-way path (higher `Auto` crossover; see
    /// [`AUTO_BRANCHLESS_THREE_WAY_THRESHOLD`]).
    #[inline(always)]
    pub fn use_branchless_three_way(self, len: usize) -> bool {
        self.use_branchless_above(len, AUTO_BRANCHLESS_THREE_WAY_THRESHOLD)
    }

    #[inline(always)]
    fn use_branchless_above(self, len: usize, threshold: usize) -> bool {
        match self {
            KernelPolicy::Branchy => false,
            KernelPolicy::Branchless => true,
            KernelPolicy::Auto => len >= threshold,
        }
    }

    /// Parses a CLI spelling (`branchy` | `branchless` | `auto`).
    pub fn parse(s: &str) -> Option<KernelPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "branchy" => Some(KernelPolicy::Branchy),
            "branchless" => Some(KernelPolicy::Branchless),
            "auto" => Some(KernelPolicy::Auto),
            _ => None,
        }
    }

    /// The CLI/report spelling.
    pub fn label(&self) -> &'static str {
        match self {
            KernelPolicy::Branchy => "branchy",
            KernelPolicy::Branchless => "branchless",
            KernelPolicy::Auto => "auto",
        }
    }
}

impl std::fmt::Display for KernelPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------
// Two-way
// ---------------------------------------------------------------------

/// Blockwise predicated two-way partition: same contract, result and
/// [`Stats`] delta as [`crack_in_two`], minus the per-element branch.
///
/// The pass scans a [`KERNEL_BLOCK`]-wide chunk from each end, collecting
/// the offsets of misplaced elements with branch-free cursor arithmetic
/// (`idx += (key >= pivot) as usize`), then exchanges the leftmost
/// misplaced left element with the rightmost misplaced right element,
/// pairwise — exactly the exchange sequence of the Hoare pass, so the
/// physical outcome is bit-identical to the branchy kernel. The final
/// sub-2-chunk window falls back to the shared scalar Hoare tail.
pub fn crack_in_two_branchless<E: Element>(
    data: &mut [E],
    pivot: u64,
    stats: &mut Stats,
) -> usize {
    stats.touched += data.len() as u64;
    stats.comparisons += data.len() as u64;
    let mut offs_l = [0u8; KERNEL_BLOCK];
    let mut offs_r = [0u8; KERNEL_BLOCK];
    let mut l = 0usize; // data[..l] settled < pivot
    let mut r = data.len(); // data[r..] settled >= pivot
    let (mut num_l, mut start_l) = (0usize, 0usize);
    let (mut num_r, mut start_r) = (0usize, 0usize);
    let mut swaps = 0u64;
    while r - l > 2 * KERNEL_BLOCK {
        if num_l == 0 {
            // Scan a fresh left chunk: record offsets of keys >= pivot.
            start_l = 0;
            let block = &data[l..l + KERNEL_BLOCK];
            for (i, e) in block.iter().enumerate() {
                offs_l[num_l] = i as u8;
                num_l += (e.key() >= pivot) as usize;
            }
        }
        if num_r == 0 {
            // Scan a fresh right chunk from the outside in: record offsets
            // (as distance from r-1) of keys < pivot.
            start_r = 0;
            let block = &data[r - KERNEL_BLOCK..r];
            for i in 0..KERNEL_BLOCK {
                offs_r[num_r] = i as u8;
                num_r += (block[KERNEL_BLOCK - 1 - i].key() < pivot) as usize;
            }
        }
        // Exchange pairs outside-in: k-th misplaced-from-the-left with
        // k-th misplaced-from-the-right — the Hoare pairing.
        let m = num_l.min(num_r);
        for k in 0..m {
            data.swap(
                l + offs_l[start_l + k] as usize,
                r - 1 - offs_r[start_r + k] as usize,
            );
        }
        swaps += m as u64;
        num_l -= m;
        num_r -= m;
        start_l += m;
        start_r += m;
        // A chunk whose misplaced elements are all fixed is fully settled.
        if num_l == 0 {
            l += KERNEL_BLOCK;
        }
        if num_r == 0 {
            r -= KERNEL_BLOCK;
        }
    }
    // Tail: at most one side still has pending offsets, and they lie
    // inside [l, r); the scalar Hoare pass re-derives and finishes the
    // identical exchange sequence over the remaining window.
    let (rel, tail_swaps) = hoare_partition(&mut data[l..r], pivot);
    stats.swaps += swaps + tail_swaps;
    l + rel
}

/// Policy dispatch for the two-way partition.
#[inline]
pub fn crack_in_two_policy<E: Element>(
    data: &mut [E],
    pivot: u64,
    policy: KernelPolicy,
    stats: &mut Stats,
) -> usize {
    if policy.use_branchless(data.len()) {
        crack_in_two_branchless(data, pivot, stats)
    } else {
        crack_in_two(data, pivot, stats)
    }
}

// ---------------------------------------------------------------------
// Three-way
// ---------------------------------------------------------------------

/// Predicated three-way partition: same contract, result and [`Stats`]
/// delta as [`crack_in_three`], with the per-element three-way branch
/// replaced by an arithmetically selected swap target.
///
/// Each iteration computes `lt = (key < a)`, `ge = (key >= b)` and derives
/// the swap destination as `lt·lo + ge·(hi-1) + mid·i`, then exchanges
/// unconditionally (a self-swap when the element is already in place) and
/// advances all three cursors by arithmetic on the two flags. The state
/// evolution — including which exchanges are counted as swaps — matches
/// the branchy Dutch-national-flag pass step for step.
pub fn crack_in_three_branchless<E: Element>(
    data: &mut [E],
    a: u64,
    b: u64,
    stats: &mut Stats,
) -> (usize, usize) {
    debug_assert!(a <= b, "crack_in_three requires a <= b");
    let mut lo = 0usize; // next slot of the < a region
    let mut i = 0usize; // scan cursor
    let mut hi = data.len(); // start of the >= b region
    let mut touched = 0u64;
    let mut swaps = 0u64;
    while i < hi {
        let k = data[i].key();
        touched += 1;
        let lt = (k < a) as usize;
        let ge = (k >= b) as usize;
        let mid = 1 - lt - ge;
        let new_hi = hi - ge;
        let target = lt * lo + ge * new_hi + mid * i;
        data.swap(i, target);
        // The branchy pass skips the self-swap in the `< a` case but
        // counts every `>= b` exchange; mirror that accounting exactly.
        swaps += (lt & usize::from(i != lo)) as u64 + ge as u64;
        lo += lt;
        hi = new_hi;
        i += lt + mid; // the >= b case re-examines the swapped-in element
    }
    stats.touched += touched;
    stats.comparisons += touched;
    stats.swaps += swaps;
    (lo, hi)
}

/// Policy dispatch for the three-way partition.
#[inline]
pub fn crack_in_three_policy<E: Element>(
    data: &mut [E],
    a: u64,
    b: u64,
    policy: KernelPolicy,
    stats: &mut Stats,
) -> (usize, usize) {
    if policy.use_branchless_three_way(data.len()) {
        crack_in_three_branchless(data, a, b, stats)
    } else {
        crack_in_three(data, a, b, stats)
    }
}

// ---------------------------------------------------------------------
// Scan + filter
// ---------------------------------------------------------------------

/// Two-pass count-then-fill filter scan: same contract, output and
/// [`Stats`] delta as [`scan_filter`], without per-element branches or
/// mid-scan reallocation.
///
/// The first pass counts qualifiers with pure flag arithmetic (LLVM
/// vectorizes it), the output is grown to the exact final size once, and
/// the second pass writes every element to the current cursor slot,
/// advancing the cursor only for keepers — non-keepers are overwritten by
/// the next keeper, and one scratch slot past the end absorbs the final
/// overwrites before the vector is truncated to the counted size.
pub fn scan_filter_branchless<E: Element>(
    data: &[E],
    fringe: Fringe,
    out: &mut Vec<E>,
    stats: &mut Stats,
) -> usize {
    // Monomorphize per filter shape, as the branchy kernel does.
    match fringe {
        Fringe::Both(q) => fill_branchless(data, |k| q.contains(k), out, stats),
        Fringe::Low(a) => fill_branchless(data, |k| k >= a, out, stats),
        Fringe::High(b) => fill_branchless(data, |k| k < b, out, stats),
        Fringe::None => {
            stats.touched += data.len() as u64;
            stats.comparisons += data.len() as u64;
            0
        }
    }
}

#[inline]
fn fill_branchless<E: Element>(
    data: &[E],
    keep: impl Fn(u64) -> bool,
    out: &mut Vec<E>,
    stats: &mut Stats,
) -> usize {
    let count: usize = data.iter().map(|e| keep(e.key()) as usize).sum();
    if count > 0 {
        let base = out.len();
        // One scratch slot past the counted size keeps the unconditional
        // cursor write in bounds after the last keeper.
        out.resize(base + count + 1, data[0]);
        let dst = &mut out[base..];
        let mut w = 0usize;
        for e in data {
            dst[w] = *e;
            w += keep(e.key()) as usize;
        }
        out.truncate(base + count);
    }
    // §3 convention: one logical inspection per element, regardless of
    // physical passes — identical to the branchy kernel's delta.
    stats.touched += data.len() as u64;
    stats.comparisons += data.len() as u64;
    stats.materialized += count as u64;
    count
}

/// Policy dispatch for the filter scan.
#[inline]
pub fn scan_filter_policy<E: Element>(
    data: &[E],
    fringe: Fringe,
    policy: KernelPolicy,
    out: &mut Vec<E>,
    stats: &mut Stats,
) -> usize {
    if policy.use_branchless(data.len()) {
        scan_filter_branchless(data, fringe, out, stats)
    } else {
        scan_filter(data, fringe, out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_types::{QueryRange, Tuple};

    fn xorshift_data(n: usize, mut state: u64) -> Vec<u64> {
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % (n as u64).max(1)
            })
            .collect()
    }

    #[test]
    fn two_way_is_bit_identical_to_branchy() {
        // Cross the 2-chunk boundary in both directions, with pivots at
        // the extremes and the middle.
        for n in [0, 1, 5, 255, 256, 257, 400, 1000, 5000] {
            for pivot_frac in [0u64, 1, 2, 4] {
                let base = xorshift_data(n, 0x5EED + n as u64);
                let pivot = (n as u64).checked_div(pivot_frac).unwrap_or(0);
                let mut branchy = base.clone();
                let mut branchless = base.clone();
                let mut sa = Stats::new();
                let mut sb = Stats::new();
                let pa = crack_in_two(&mut branchy, pivot, &mut sa);
                let pb = crack_in_two_branchless(&mut branchless, pivot, &mut sb);
                assert_eq!(pa, pb, "boundary n={n} pivot={pivot}");
                assert_eq!(branchy, branchless, "order n={n} pivot={pivot}");
                assert_eq!(sa, sb, "stats n={n} pivot={pivot}");
            }
        }
    }

    #[test]
    fn two_way_branchless_partitions_tuples() {
        let mut d: Vec<Tuple> = (0..1000u64)
            .map(|i| Tuple::new((i * 7919) % 1000, i as u32))
            .collect();
        let mut stats = Stats::new();
        let p = crack_in_two_branchless(&mut d, 500, &mut stats);
        assert!(d[..p].iter().all(|t| t.key < 500));
        assert!(d[p..].iter().all(|t| t.key >= 500));
        // Rowids stay attached through blockwise exchanges.
        for t in &d {
            assert_eq!((u64::from(t.row) * 7919) % 1000, t.key);
        }
    }

    #[test]
    fn three_way_matches_branchy_exactly() {
        for n in [0, 1, 7, 300, 1024] {
            let base = xorshift_data(n, 0xC0FFEE + n as u64);
            let (a, b) = (n as u64 / 4, 3 * n as u64 / 4);
            let mut branchy = base.clone();
            let mut branchless = base.clone();
            let mut sa = Stats::new();
            let mut sb = Stats::new();
            let ra = crack_in_three(&mut branchy, a, b, &mut sa);
            let rb = crack_in_three_branchless(&mut branchless, a, b, &mut sb);
            assert_eq!(ra, rb, "boundaries n={n}");
            assert_eq!(branchy, branchless, "order n={n}");
            assert_eq!(sa, sb, "stats n={n}");
        }
    }

    #[test]
    fn scan_filter_matches_branchy_for_every_fringe() {
        let data = xorshift_data(500, 0xF11);
        let q = QueryRange::new(100, 300);
        for fringe in [
            Fringe::Both(q),
            Fringe::Low(250),
            Fringe::High(250),
            Fringe::None,
        ] {
            let mut out_a = vec![7u64]; // non-empty: appends, not replaces
            let mut out_b = vec![7u64];
            let mut sa = Stats::new();
            let mut sb = Stats::new();
            let ka = scan_filter(&data, fringe, &mut out_a, &mut sa);
            let kb = scan_filter_branchless(&data, fringe, &mut out_b, &mut sb);
            assert_eq!(ka, kb, "{fringe:?}");
            assert_eq!(out_a, out_b, "{fringe:?}");
            assert_eq!(sa, sb, "{fringe:?}");
        }
    }

    #[test]
    fn scan_filter_branchless_no_realloc_after_count() {
        let data: Vec<u64> = (0..1000).collect();
        let mut out = Vec::new();
        let mut stats = Stats::new();
        scan_filter_branchless(&data, Fringe::Low(0), &mut out, &mut stats);
        assert_eq!(out.len(), 1000);
        assert_eq!(out, data);
    }

    #[test]
    fn auto_policy_switches_on_threshold() {
        assert!(!KernelPolicy::Auto.use_branchless(AUTO_BRANCHLESS_THRESHOLD - 1));
        assert!(KernelPolicy::Auto.use_branchless(AUTO_BRANCHLESS_THRESHOLD));
        assert!(KernelPolicy::Branchless.use_branchless(0));
        assert!(!KernelPolicy::Branchy.use_branchless(usize::MAX));
        // The three-way kernel crosses over later.
        assert!(!KernelPolicy::Auto.use_branchless_three_way(AUTO_BRANCHLESS_THRESHOLD));
        assert!(
            KernelPolicy::Auto.use_branchless_three_way(AUTO_BRANCHLESS_THREE_WAY_THRESHOLD)
        );
        assert!(KernelPolicy::Branchless.use_branchless_three_way(0));
    }

    #[test]
    fn policy_parse_roundtrip() {
        for p in [
            KernelPolicy::Branchy,
            KernelPolicy::Branchless,
            KernelPolicy::Auto,
        ] {
            assert_eq!(KernelPolicy::parse(p.label()), Some(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(KernelPolicy::parse("BRANCHLESS"), Some(KernelPolicy::Branchless));
        assert_eq!(KernelPolicy::parse("simd"), None);
    }

    #[test]
    fn dispatchers_honor_policy() {
        let base = xorshift_data(10_000, 0xD15);
        for policy in [
            KernelPolicy::Branchy,
            KernelPolicy::Branchless,
            KernelPolicy::Auto,
        ] {
            let mut d = base.clone();
            let mut stats = Stats::new();
            let p = crack_in_two_policy(&mut d, 5000, policy, &mut stats);
            assert!(d[..p].iter().all(|k| *k < 5000), "{policy}");
            let (p1, p2) = crack_in_three_policy(&mut d, 2000, 8000, policy, &mut stats);
            assert!(p1 <= p2, "{policy}");
            let mut out = Vec::new();
            let kept = scan_filter_policy(
                &d,
                Fringe::Both(QueryRange::new(0, 100)),
                policy,
                &mut out,
                &mut stats,
            );
            assert_eq!(kept, out.len(), "{policy}");
        }
    }
}
