//! Two-way partitioning: the original cracking primitive.

use scrack_types::{Element, Stats};

/// Partitions `data` so keys `< pivot` precede keys `>= pivot`.
///
/// Returns the boundary position `p`: after the call, `data[..p]` holds all
/// elements with `key < pivot` and `data[p..]` all elements with
/// `key >= pivot`. This is exactly the state a crack `(pivot, p)` records
/// in the cracker index.
///
/// The implementation is the Hoare-style two-cursor pass of the original
/// cracking paper: each element is inspected exactly once, misplaced pairs
/// are exchanged. Cost accounting: `touched` and `comparisons` grow by the
/// number of inspections (= `data.len()`), `swaps` by the exchanges.
///
/// ```
/// use scrack_partition::crack_in_two;
/// use scrack_types::Stats;
///
/// let mut col = vec![13u64, 16, 4, 9, 2, 12, 7, 1];
/// let mut stats = Stats::new();
/// let p = crack_in_two(&mut col, 10, &mut stats);
/// assert!(col[..p].iter().all(|k| *k < 10));
/// assert!(col[p..].iter().all(|k| *k >= 10));
/// assert_eq!(p, 5);
/// ```
#[inline]
pub fn crack_in_two<E: Element>(data: &mut [E], pivot: u64, stats: &mut Stats) -> usize {
    let (p, swaps) = hoare_partition(data, pivot);
    stats.touched += data.len() as u64;
    stats.comparisons += data.len() as u64;
    stats.swaps += swaps;
    p
}

/// The raw Hoare pass: boundary position plus the number of exchanges, no
/// stats. Shared between [`crack_in_two`] and the branchless kernel's
/// scalar tail (`kernels.rs`), which must replicate this exact exchange
/// sequence to stay bit-identical with the branchy kernel.
pub(crate) fn hoare_partition<E: Element>(data: &mut [E], pivot: u64) -> (usize, u64) {
    let mut l = 0usize;
    let mut r = data.len();
    let mut swaps = 0u64;
    loop {
        // Invariant: data[..l] < pivot, data[r..] >= pivot.
        while l < r && data[l].key() < pivot {
            l += 1;
        }
        while l < r && data[r - 1].key() >= pivot {
            r -= 1;
        }
        if l >= r {
            break;
        }
        // data[l] >= pivot and data[r-1] < pivot: exchange and advance both
        // cursors (the exchanged elements are now correctly placed).
        data.swap(l, r - 1);
        swaps += 1;
        l += 1;
        r -= 1;
    }
    (l, swaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_types::Tuple;

    fn check(data: &mut [u64], pivot: u64) -> usize {
        let mut before: Vec<u64> = data.to_vec();
        before.sort_unstable();
        let mut stats = Stats::new();
        let p = crack_in_two(data, pivot, &mut stats);
        assert!(data[..p].iter().all(|e| *e < pivot), "left side dirty");
        assert!(data[p..].iter().all(|e| *e >= pivot), "right side dirty");
        let mut after: Vec<u64> = data.to_vec();
        after.sort_unstable();
        assert_eq!(before, after, "partition must be a permutation");
        assert_eq!(stats.touched, data.len() as u64);
        p
    }

    #[test]
    fn empty_slice() {
        let mut d: [u64; 0] = [];
        assert_eq!(check(&mut d, 5), 0);
    }

    #[test]
    fn single_element() {
        let mut d = [3u64];
        assert_eq!(check(&mut d, 5), 1);
        let mut d = [7u64];
        assert_eq!(check(&mut d, 5), 0);
    }

    #[test]
    fn already_partitioned() {
        let mut d = [1u64, 2, 3, 10, 11, 12];
        assert_eq!(check(&mut d, 10), 3);
    }

    #[test]
    fn reverse_order() {
        let mut d: Vec<u64> = (0..100).rev().collect();
        assert_eq!(check(&mut d, 50), 50);
    }

    #[test]
    fn all_below_pivot() {
        let mut d = [1u64, 2, 3];
        assert_eq!(check(&mut d, 100), 3);
    }

    #[test]
    fn all_at_or_above_pivot() {
        let mut d = [5u64, 6, 7];
        assert_eq!(check(&mut d, 5), 0);
    }

    #[test]
    fn duplicates_of_pivot_go_right() {
        let mut d = [5u64, 1, 5, 2, 5, 9];
        let p = check(&mut d, 5);
        assert_eq!(p, 2);
    }

    #[test]
    fn tuples_keep_rowids_attached() {
        let mut d: Vec<Tuple> = vec![
            Tuple::new(9, 0),
            Tuple::new(1, 1),
            Tuple::new(7, 2),
            Tuple::new(3, 3),
        ];
        let mut stats = Stats::new();
        let p = crack_in_two(&mut d, 5, &mut stats);
        assert_eq!(p, 2);
        // Each key must still carry its original rowid.
        for t in &d {
            match t.key {
                9 => assert_eq!(t.row, 0),
                1 => assert_eq!(t.row, 1),
                7 => assert_eq!(t.row, 2),
                3 => assert_eq!(t.row, 3),
                _ => panic!("unexpected key"),
            }
        }
    }

    #[test]
    fn counts_swaps_only_for_misplaced_pairs() {
        // [10, 1, 11, 2]: one exchange (10 <-> 2) fixes both misplaced
        // pairs reachable before the cursors cross; 1 and 11 are already
        // on their correct sides once the cursors pass them.
        let mut d = [10u64, 1, 11, 2];
        let mut stats = Stats::new();
        crack_in_two(&mut d, 5, &mut stats);
        assert_eq!(stats.swaps, 1);
        let mut d = [1u64, 2, 10, 11];
        let mut stats = Stats::new();
        crack_in_two(&mut d, 5, &mut stats);
        assert_eq!(stats.swaps, 0);
    }
}
