//! Order statistics: introselect, the DDC/DD1C median machinery.
//!
//! The Data-Driven-Center algorithms pivot every auxiliary crack on the
//! positional median of a piece. The paper uses "the Introselect algorithm
//! [23], which provides a good worst-case performance by combining
//! quickselect with BFPRT" (§4). This module implements exactly that:
//! quickselect with median-of-3 pivots and a depth budget; when the budget
//! is exhausted, pivots come from the BFPRT median-of-medians procedure,
//! which guarantees linear worst-case time.

use crate::sort::insertion_sort;
use scrack_types::{Element, Stats};

/// Small-range cutoff below which selection degenerates to insertion sort.
const SELECT_INSERTION_CUTOFF: usize = 24;

/// Three-way partition of `data` by key `v`: `< v` | `== v` | `> v`.
///
/// Returns `(lt, gt)`: `data[..lt] < v`, `data[lt..gt] == v`,
/// `data[gt..] > v`. Robust against duplicate keys, which makes the
/// quickselect loop below terminate on any input.
fn partition3<E: Element>(data: &mut [E], v: u64, stats: &mut Stats) -> (usize, usize) {
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = data.len();
    let mut touched = 0u64;
    let mut swaps = 0u64;
    while i < gt {
        let k = data[i].key();
        touched += 1;
        if k < v {
            if i != lt {
                data.swap(i, lt);
                swaps += 1;
            }
            lt += 1;
            i += 1;
        } else if k > v {
            gt -= 1;
            data.swap(i, gt);
            swaps += 1;
        } else {
            i += 1;
        }
    }
    stats.touched += touched;
    stats.comparisons += touched;
    stats.swaps += swaps;
    (lt, gt)
}

/// Median key of (up to) the first five elements after insertion-sorting
/// them; helper for median-of-medians.
fn median_of_five<E: Element>(chunk: &mut [E], stats: &mut Stats) -> u64 {
    insertion_sort(chunk, stats);
    chunk[chunk.len() / 2].key()
}

/// The BFPRT median-of-medians pivot: guarantees that at least ~30% of the
/// elements fall on each side, bounding recursion depth.
fn median_of_medians<E: Element>(data: &mut [E], stats: &mut Stats) -> u64 {
    let n = data.len();
    if n <= 5 {
        let mut tmp = data.to_vec();
        return median_of_five(&mut tmp, stats);
    }
    // Collect chunk medians into a scratch vector and recurse on it. The
    // scratch copy keeps `data`'s layout untouched (the caller's quickselect
    // does the actual partitioning).
    let mut medians: Vec<E> = Vec::with_capacity(n / 5 + 1);
    for chunk in data.chunks_mut(5) {
        let m = median_of_five(chunk, stats);
        // Position of the median inside the (now sorted) chunk:
        let mid = chunk.len() / 2;
        debug_assert_eq!(chunk[mid].key(), m);
        medians.push(chunk[mid]);
    }
    let k = medians.len() / 2;
    select_nth_inner(&mut medians, k, stats, 0)
}

/// Quickselect with a depth budget; falls back to BFPRT pivots when the
/// budget is spent. `depth_exceeded != 0` forces BFPRT pivots.
fn select_nth_inner<E: Element>(
    data: &mut [E],
    k: usize,
    stats: &mut Stats,
    mut forced_bfprt: u8,
) -> u64 {
    assert!(k < data.len(), "selection index out of bounds");
    let mut lo = 0usize;
    let mut hi = data.len();
    let mut budget = 2 * (usize::BITS - data.len().leading_zeros()) + 4;
    loop {
        let n = hi - lo;
        if n <= SELECT_INSERTION_CUTOFF {
            insertion_sort(&mut data[lo..hi], stats);
            return data[k].key();
        }
        let pivot = if forced_bfprt != 0 || budget == 0 {
            forced_bfprt = 1;
            median_of_medians(&mut data[lo..hi], stats)
        } else {
            budget -= 1;
            // Median of three sampled keys.
            let a = data[lo].key();
            let b = data[lo + n / 2].key();
            let c = data[hi - 1].key();
            stats.comparisons += 3;
            median3(a, b, c)
        };
        let (lt, gt) = partition3(&mut data[lo..hi], pivot, stats);
        let (lt, gt) = (lo + lt, lo + gt);
        if k < lt {
            hi = lt;
        } else if k >= gt {
            lo = gt;
        } else {
            return pivot;
        }
    }
}

#[inline]
fn median3(a: u64, b: u64, c: u64) -> u64 {
    a.max(b).min(a.min(b).max(c))
}

/// Returns the key of the `k`-th smallest element (0-based, duplicates
/// counted), rearranging `data` so that `data[..k]` holds keys `<=` the
/// result and `data[k..]` keys `>=` it.
///
/// Worst-case linear time (introselect: quickselect + BFPRT fallback).
pub fn select_nth_key<E: Element>(data: &mut [E], k: usize, stats: &mut Stats) -> u64 {
    select_nth_inner(data, k, stats, 0)
}

/// Splits `data` at its positional median, the DDC "center crack".
///
/// Returns `(pos, pivot)` such that `data[..pos]` holds keys `< pivot` and
/// `data[pos..]` keys `>= pivot` — the exact invariant a crack
/// `(pivot, pos)` records. With unique keys (the paper's setting) `pos` is
/// `len/2` exactly; with duplicates the boundary is the first occurrence
/// of the median key.
///
/// Implementation: introselect for the median value, then one
/// [`crack_in_two`](crate::crack_in_two)-style pass to establish the strict
/// boundary. The extra pass over mostly-partitioned data is cheap (few
/// swaps) and keeps the crack invariant exact even with duplicate keys —
/// this deliberate cost is part of why the paper finds DDC "expensive and
/// data-dependent" relative to DDR (§4).
pub fn median_partition<E: Element>(data: &mut [E], stats: &mut Stats) -> (usize, u64) {
    median_partition_policy(data, crate::KernelPolicy::Branchy, stats)
}

/// [`median_partition`] with the boundary-establishing pass dispatched by
/// `policy` — how DDC/DD1C route their auxiliary cracks through the
/// engine's kernel policy. (The introselect reordering itself has no
/// branchless twin; only the final full-piece pass is policy-dispatched.)
pub fn median_partition_policy<E: Element>(
    data: &mut [E],
    policy: crate::KernelPolicy,
    stats: &mut Stats,
) -> (usize, u64) {
    debug_assert!(!data.is_empty());
    let pivot = select_nth_key(data, data.len() / 2, stats);
    let pos = crate::crack_in_two_policy(data, pivot, policy, stats);
    (pos, pivot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kth_by_sorting(data: &[u64], k: usize) -> u64 {
        let mut v = data.to_vec();
        v.sort_unstable();
        v[k]
    }

    #[test]
    fn selects_correct_order_statistic() {
        let data: Vec<u64> = (0..101).map(|i| (i * 37) % 101).collect();
        for k in [0, 1, 50, 99, 100] {
            let mut d = data.clone();
            let mut stats = Stats::new();
            let got = select_nth_key(&mut d, k, &mut stats);
            assert_eq!(got, kth_by_sorting(&data, k), "k={k}");
        }
    }

    #[test]
    fn partition_postcondition_holds() {
        let data: Vec<u64> = (0..500).map(|i| (i * 211) % 499).collect();
        let k = 123;
        let mut d = data.clone();
        let mut stats = Stats::new();
        let v = select_nth_key(&mut d, k, &mut stats);
        assert!(d[..k].iter().all(|e| *e <= v));
        assert!(d[k..].iter().all(|e| *e >= v));
    }

    #[test]
    fn all_equal_keys_terminate() {
        let mut d = vec![7u64; 1000];
        let mut stats = Stats::new();
        assert_eq!(select_nth_key(&mut d, 500, &mut stats), 7);
    }

    #[test]
    fn two_distinct_values() {
        let mut d: Vec<u64> = (0..1000).map(|i| if i % 3 == 0 { 1 } else { 9 }).collect();
        let mut stats = Stats::new();
        assert_eq!(select_nth_key(&mut d, 0, &mut stats), 1);
        let mut d2: Vec<u64> = (0..1000).map(|i| if i % 3 == 0 { 1 } else { 9 }).collect();
        assert_eq!(select_nth_key(&mut d2, 999, &mut stats), 9);
    }

    #[test]
    fn median_partition_halves_unique_data() {
        let data: Vec<u64> = (0..1024).map(|i| (i * 809) % 1024).collect();
        let mut d = data.clone();
        let mut stats = Stats::new();
        let (pos, pivot) = median_partition(&mut d, &mut stats);
        assert_eq!(pos, 512);
        assert_eq!(pivot, 512);
        assert!(d[..pos].iter().all(|e| *e < pivot));
        assert!(d[pos..].iter().all(|e| *e >= pivot));
        let mut sorted_after = d.clone();
        sorted_after.sort_unstable();
        let mut sorted_before = data;
        sorted_before.sort_unstable();
        assert_eq!(sorted_after, sorted_before);
    }

    #[test]
    fn median_partition_with_duplicates_keeps_strict_boundary() {
        let mut d = vec![5u64, 5, 5, 1, 9, 5, 5, 2];
        let mut stats = Stats::new();
        let (pos, pivot) = median_partition(&mut d, &mut stats);
        assert!(d[..pos].iter().all(|e| *e < pivot));
        assert!(d[pos..].iter().all(|e| *e >= pivot));
    }

    #[test]
    fn adversarial_sorted_and_reversed_inputs() {
        for n in [100usize, 1000, 4096] {
            let mut asc: Vec<u64> = (0..n as u64).collect();
            let mut stats = Stats::new();
            assert_eq!(select_nth_key(&mut asc, n / 2, &mut stats), n as u64 / 2);
            let mut desc: Vec<u64> = (0..n as u64).rev().collect();
            assert_eq!(select_nth_key(&mut desc, n / 4, &mut stats), n as u64 / 4);
        }
    }

    #[test]
    fn median_of_medians_pivot_is_representative() {
        let mut d: Vec<u64> = (0..500).map(|i| (i * 97) % 500).collect();
        let mut stats = Stats::new();
        let m = median_of_medians(&mut d, &mut stats);
        // BFPRT guarantees the pivot is within the 30th..70th percentile.
        let rank = d.iter().filter(|e| **e < m).count();
        assert!(rank >= 500 * 2 / 10, "pivot rank {rank} too low");
        assert!(rank <= 500 * 8 / 10, "pivot rank {rank} too high");
    }

    #[test]
    #[should_panic(expected = "selection index out of bounds")]
    fn out_of_bounds_k_panics() {
        let mut d = vec![1u64, 2, 3];
        let mut stats = Stats::new();
        select_nth_key(&mut d, 3, &mut stats);
    }
}
