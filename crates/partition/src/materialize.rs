//! Partitioning integrated with result materialization (the MDD1R primitive).

use scrack_types::{Element, QueryRange, Stats};

/// Which side(s) of the current query's range must be filtered while a
/// fringe piece is partitioned.
///
/// MDD1R (Fig. 5) answers a select by materializing the qualifying tuples
/// of the (at most two) end pieces while it random-cracks them. When the
/// two bounds fall in *different* pieces the paper uses specialized
/// single-comparison filters: the left fringe piece only needs `key >= a`
/// (everything in it is `< b` already) and the right fringe only `key < b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fringe {
    /// Both bounds fall in this piece: keep `a <= key < b`.
    Both(QueryRange),
    /// Left fringe: keep `key >= low`.
    Low(u64),
    /// Right fringe: keep `key < high`.
    High(u64),
    /// Materialize nothing (pure reorganization).
    None,
}

/// Cap (in elements) on the speculative output reservation of the fused
/// single-pass kernels. They cannot know the qualifying count without a
/// second scan, so they reserve `min(piece_len, cap)`: small and medium
/// results never reallocate mid-scan, while a low-selectivity query over
/// a huge piece is not charged gigabytes of speculative capacity (beyond
/// the cap, `Vec`'s doubling growth is amortized against a result that
/// large). The two-pass branchless `scan_filter` reserves the exact count
/// instead.
pub const RESERVE_CAP: usize = 1 << 20;

impl Fringe {
    /// Whether a key qualifies under this filter.
    #[inline(always)]
    pub fn keeps(&self, key: u64) -> bool {
        match *self {
            Fringe::Both(q) => q.contains(key),
            Fringe::Low(a) => key >= a,
            Fringe::High(b) => key < b,
            Fringe::None => false,
        }
    }
}

/// Partitions `data` on `pivot` while materializing qualifying tuples.
///
/// This is `split_and_materialize` of Fig. 5: one Hoare-style pass that
/// simultaneously (a) moves keys `< pivot` before keys `>= pivot`,
/// returning the boundary, and (b) appends every element passing `fringe`
/// to `out`. Fusing the two avoids the second scan the paper warns about
/// ("otherwise, we would have to do a second scan after the random crack").
///
/// Each element is inspected exactly once; exchanged elements are filter-
/// checked at exchange time rather than re-visited (an equivalent, slightly
/// tighter formulation of the paper's loop).
#[inline]
pub fn split_and_materialize<E: Element>(
    data: &mut [E],
    pivot: u64,
    fringe: Fringe,
    out: &mut Vec<E>,
    stats: &mut Stats,
) -> usize {
    // Monomorphize the hot loop per filter shape, mirroring the paper's
    // "specialized versions of the split_and_materialize method".
    match fringe {
        Fringe::Both(q) => split_inner(data, pivot, |k| q.contains(k), out, stats),
        Fringe::Low(a) => split_inner(data, pivot, |k| k >= a, out, stats),
        Fringe::High(b) => split_inner(data, pivot, |k| k < b, out, stats),
        Fringe::None => split_inner(data, pivot, |_| false, out, stats),
    }
}

#[inline]
fn split_inner<E: Element>(
    data: &mut [E],
    pivot: u64,
    keep: impl Fn(u64) -> bool,
    out: &mut Vec<E>,
    stats: &mut Stats,
) -> usize {
    // Worst case every element qualifies; a capped up-front reservation
    // keeps the fused loop free of mid-scan reallocation for every piece
    // up to RESERVE_CAP without charging huge pieces speculative memory.
    out.reserve(data.len().min(RESERVE_CAP));
    let mut l = 0usize;
    let mut r = data.len();
    let mut swaps = 0u64;
    let mut materialized = 0u64;
    loop {
        while l < r {
            let k = data[l].key();
            if k >= pivot {
                break;
            }
            if keep(k) {
                out.push(data[l]);
                materialized += 1;
            }
            l += 1;
        }
        while l < r {
            let k = data[r - 1].key();
            if k < pivot {
                break;
            }
            if keep(k) {
                out.push(data[r - 1]);
                materialized += 1;
            }
            r -= 1;
        }
        if l >= r {
            break;
        }
        // data[l] >= pivot, data[r-1] < pivot: both still unfiltered.
        let (kl, kr) = (data[l].key(), data[r - 1].key());
        if keep(kl) {
            out.push(data[l]);
            materialized += 1;
        }
        if keep(kr) {
            out.push(data[r - 1]);
            materialized += 1;
        }
        data.swap(l, r - 1);
        swaps += 1;
        l += 1;
        r -= 1;
    }
    stats.touched += data.len() as u64;
    stats.comparisons += 2 * data.len() as u64; // pivot test + filter test
    stats.swaps += swaps;
    stats.materialized += materialized;
    l
}

/// Scans `data` appending every element passing `fringe` to `out`, without
/// any reorganization.
///
/// Used by progressive cracking for the settled prefix/suffix of a piece
/// whose partition job is still in flight, and by the plain `Scan`
/// baseline.
#[inline]
pub fn scan_filter<E: Element>(
    data: &[E],
    fringe: Fringe,
    out: &mut Vec<E>,
    stats: &mut Stats,
) -> usize {
    let before = out.len();
    // Capped upper-bound reservation: no mid-scan reallocation up to
    // RESERVE_CAP qualifying tuples (the branchless twin in `kernels.rs`
    // reserves the exact count instead, at the cost of a second pass).
    if !matches!(fringe, Fringe::None) {
        out.reserve(data.len().min(RESERVE_CAP));
    }
    match fringe {
        Fringe::Both(q) => {
            for e in data {
                if q.contains(e.key()) {
                    out.push(*e);
                }
            }
        }
        Fringe::Low(a) => {
            for e in data {
                if e.key() >= a {
                    out.push(*e);
                }
            }
        }
        Fringe::High(b) => {
            for e in data {
                if e.key() < b {
                    out.push(*e);
                }
            }
        }
        Fringe::None => {}
    }
    let kept = out.len() - before;
    stats.touched += data.len() as u64;
    stats.comparisons += data.len() as u64;
    stats.materialized += kept as u64;
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<u64>) -> Vec<u64> {
        v.sort_unstable();
        v
    }

    #[test]
    fn partitions_and_materializes_both_filter() {
        let mut d: Vec<u64> = vec![13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6];
        let orig = sorted(d.clone());
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let q = QueryRange::new(5, 12);
        let p = split_and_materialize(&mut d, 9, Fringe::Both(q), &mut out, &mut stats);
        assert!(d[..p].iter().all(|e| *e < 9));
        assert!(d[p..].iter().all(|e| *e >= 9));
        assert_eq!(sorted(d.clone()), orig);
        assert_eq!(sorted(out), vec![6, 7, 8, 9, 11]);
        assert_eq!(stats.materialized, 5);
    }

    #[test]
    fn low_fringe_keeps_geq() {
        let mut d: Vec<u64> = (0..20).rev().collect();
        let mut out = Vec::new();
        let mut stats = Stats::new();
        split_and_materialize(&mut d, 10, Fringe::Low(15), &mut out, &mut stats);
        assert_eq!(sorted(out), vec![15, 16, 17, 18, 19]);
    }

    #[test]
    fn high_fringe_keeps_lt() {
        let mut d: Vec<u64> = (0..20).collect();
        let mut out = Vec::new();
        let mut stats = Stats::new();
        split_and_materialize(&mut d, 10, Fringe::High(3), &mut out, &mut stats);
        assert_eq!(sorted(out), vec![0, 1, 2]);
    }

    #[test]
    fn none_fringe_materializes_nothing() {
        let mut d: Vec<u64> = (0..20).rev().collect();
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let p = split_and_materialize(&mut d, 7, Fringe::None, &mut out, &mut stats);
        assert_eq!(p, 7);
        assert!(out.is_empty());
        assert_eq!(stats.materialized, 0);
    }

    #[test]
    fn each_element_materialized_at_most_once() {
        // A pathological arrangement exercising the swap path: keys >= pivot
        // at the front, < pivot at the back, all qualifying.
        let mut d: Vec<u64> = vec![10, 11, 12, 1, 2, 3];
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let q = QueryRange::new(0, 100);
        split_and_materialize(&mut d, 5, Fringe::Both(q), &mut out, &mut stats);
        assert_eq!(out.len(), 6, "every element exactly once");
        assert_eq!(sorted(out), vec![1, 2, 3, 10, 11, 12]);
    }

    #[test]
    fn empty_input() {
        let mut d: Vec<u64> = vec![];
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let p = split_and_materialize(&mut d, 5, Fringe::Low(0), &mut out, &mut stats);
        assert_eq!(p, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn scan_filter_variants() {
        let d: Vec<u64> = (0..10).collect();
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let n = scan_filter(
            &d,
            Fringe::Both(QueryRange::new(3, 6)),
            &mut out,
            &mut stats,
        );
        assert_eq!(n, 3);
        assert_eq!(out, vec![3, 4, 5]);
        out.clear();
        scan_filter(&d, Fringe::Low(8), &mut out, &mut stats);
        assert_eq!(out, vec![8, 9]);
        out.clear();
        scan_filter(&d, Fringe::High(2), &mut out, &mut stats);
        assert_eq!(out, vec![0, 1]);
        out.clear();
        scan_filter(&d, Fringe::None, &mut out, &mut stats);
        assert!(out.is_empty());
    }

    #[test]
    fn fringe_keeps_matches_loop_behaviour() {
        let q = QueryRange::new(4, 9);
        assert!(Fringe::Both(q).keeps(4));
        assert!(!Fringe::Both(q).keeps(9));
        assert!(Fringe::Low(4).keeps(4));
        assert!(!Fringe::Low(4).keeps(3));
        assert!(Fringe::High(9).keeps(8));
        assert!(!Fringe::High(9).keeps(9));
        assert!(!Fringe::None.keeps(0));
    }
}
