//! Physical reorganization kernel for database cracking.
//!
//! This crate implements the low-level routines every cracking variant in
//! Halim et al. (VLDB 2012) is built from. All functions operate on dense
//! slices of [`Element`]s, order exclusively by `Element::key`, and report
//! costs into a caller-supplied [`Stats`]:
//!
//! * [`crack_in_two`] — the original cracking partition: split a piece into
//!   `key < pivot` / `key >= pivot` in one pass (Idreos et al., CIDR 2007).
//! * [`crack_in_three`] — the single-pass three-way split used when both
//!   bounds of a range select fall in the same piece (Fig. 1, query Q1).
//! * [`split_and_materialize`] — the MDD1R primitive (Fig. 5): partition on
//!   a pivot while simultaneously collecting the tuples that qualify for
//!   the current query.
//! * [`PartitionJob`] / [`advance_job`] — progressive cracking (PMDD1R):
//!   a partition completed collaboratively by several queries under a swap
//!   budget.
//! * [`select_nth_key`] / [`median_partition`] — introselect (quickselect
//!   with a BFPRT median-of-medians fallback, Musser 1997), used by the
//!   data-driven-center algorithms DDC/DD1C.
//! * [`introsort`] / [`lower_bound`] — the full-index `Sort` baseline's
//!   substrate.
//!
//! Each partitioning primitive exists in two bit-identical variants: the
//! classic branchy loop and a predicated/blockwise branchless kernel (the
//! `kernels` module). [`KernelPolicy`] selects between them per call via
//! [`crack_in_two_policy`], [`crack_in_three_policy`] and
//! [`scan_filter_policy`]; results are identical either way, only the
//! wall-clock cost differs.
//!
//! [`Element`]: scrack_types::Element
//! [`Stats`]: scrack_types::Stats

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernels;
mod materialize;
mod progressive;
mod select_k;
mod sort;
mod three_way;
mod two_way;

pub use kernels::{
    crack_in_three_branchless, crack_in_three_policy, crack_in_two_branchless,
    crack_in_two_policy, scan_filter_branchless, scan_filter_policy, KernelPolicy,
    AUTO_BRANCHLESS_THREE_WAY_THRESHOLD, AUTO_BRANCHLESS_THRESHOLD, KERNEL_BLOCK,
};
pub use materialize::{scan_filter, split_and_materialize, Fringe, RESERVE_CAP};
pub use progressive::{advance_job, JobStatus, PartitionJob};
pub use select_k::{median_partition, median_partition_policy, select_nth_key};
pub use sort::{introsort, is_sorted_by_key, lower_bound, upper_bound};
pub use three_way::crack_in_three;
pub use two_way::crack_in_two;
