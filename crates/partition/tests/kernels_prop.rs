//! Property-based equivalence of the branchy and branchless kernels.
//!
//! The branchless kernels promise more than semantic equivalence: for any
//! input they must produce the *same boundary*, the *same physical order*
//! (hence the same multiset on each side), and the *identical `Stats`
//! delta* as their branchy twins. That contract is what lets
//! `KernelPolicy` be a pure performance knob — engines can switch kernels
//! per piece without perturbing any result, checksum, or cost counter.
//!
//! Sizes deliberately straddle `2 * KERNEL_BLOCK` so both the blockwise
//! main loop and the scalar tail are exercised.

use proptest::prelude::*;
use scrack_partition::{
    crack_in_three, crack_in_three_branchless, crack_in_three_policy, crack_in_two,
    crack_in_two_branchless, crack_in_two_policy, scan_filter, scan_filter_branchless,
    scan_filter_policy, Fringe, KernelPolicy,
};
use scrack_types::{QueryRange, Stats};

fn fringe_strategy() -> impl Strategy<Value = Fringe> {
    (0u64..1000, 0u64..1000, 0u8..4).prop_map(|(a, w, shape)| match shape {
        0 => Fringe::Both(QueryRange::new(a, a.saturating_add(w))),
        1 => Fringe::Low(a),
        2 => Fringe::High(a),
        _ => Fringe::None,
    })
}

proptest! {
    #[test]
    fn two_way_kernels_are_equivalent(
        data in proptest::collection::vec(0u64..1000, 0..1200),
        pivot in 0u64..1000,
    ) {
        let mut branchy = data.clone();
        let mut branchless = data;
        let mut sa = Stats::new();
        let mut sb = Stats::new();
        let pa = crack_in_two(&mut branchy, pivot, &mut sa);
        let pb = crack_in_two_branchless(&mut branchless, pivot, &mut sb);
        prop_assert_eq!(pa, pb, "boundary positions differ");
        // Bit-identical physical order implies same multiset per side.
        prop_assert_eq!(&branchy, &branchless, "physical orders differ");
        prop_assert_eq!(sa, sb, "stats deltas differ");
        prop_assert!(branchless[..pb].iter().all(|k| *k < pivot));
        prop_assert!(branchless[pb..].iter().all(|k| *k >= pivot));
    }

    #[test]
    fn three_way_kernels_are_equivalent(
        data in proptest::collection::vec(0u64..1000, 0..1200),
        a in 0u64..1000,
        w in 0u64..1000,
    ) {
        let b = a.saturating_add(w).min(1000);
        let mut branchy = data.clone();
        let mut branchless = data;
        let mut sa = Stats::new();
        let mut sb = Stats::new();
        let ra = crack_in_three(&mut branchy, a, b, &mut sa);
        let rb = crack_in_three_branchless(&mut branchless, a, b, &mut sb);
        prop_assert_eq!(ra, rb, "boundary pairs differ");
        prop_assert_eq!(&branchy, &branchless, "physical orders differ");
        prop_assert_eq!(sa, sb, "stats deltas differ");
        let (p1, p2) = rb;
        prop_assert!(branchless[..p1].iter().all(|k| *k < a));
        prop_assert!(branchless[p1..p2].iter().all(|k| a <= *k && *k < b));
        prop_assert!(branchless[p2..].iter().all(|k| *k >= b));
    }

    #[test]
    fn scan_filter_kernels_are_equivalent(
        data in proptest::collection::vec(0u64..1000, 0..1200),
        fringe in fringe_strategy(),
    ) {
        // Start from a non-empty output to check append (not replace)
        // semantics on both paths.
        let mut out_a = vec![u64::MAX];
        let mut out_b = vec![u64::MAX];
        let mut sa = Stats::new();
        let mut sb = Stats::new();
        let ka = scan_filter(&data, fringe, &mut out_a, &mut sa);
        let kb = scan_filter_branchless(&data, fringe, &mut out_b, &mut sb);
        prop_assert_eq!(ka, kb, "kept counts differ");
        prop_assert_eq!(&out_a, &out_b, "materialized outputs differ");
        prop_assert_eq!(sa, sb, "stats deltas differ");
        let expect: Vec<u64> = data.iter().copied().filter(|k| fringe.keeps(*k)).collect();
        prop_assert_eq!(&out_b[1..], &expect[..], "filter semantics drifted");
    }

    #[test]
    fn policy_dispatch_is_result_transparent(
        data in proptest::collection::vec(0u64..1000, 0..1200),
        pivot in 0u64..1000,
    ) {
        // Every policy must yield the identical outcome; Auto sits between
        // the two fixed policies depending on piece size.
        let mut reference = data.clone();
        let mut ref_stats = Stats::new();
        let ref_p = crack_in_two(&mut reference, pivot, &mut ref_stats);
        for policy in [KernelPolicy::Branchy, KernelPolicy::Branchless, KernelPolicy::Auto] {
            let mut d = data.clone();
            let mut stats = Stats::new();
            let p = crack_in_two_policy(&mut d, pivot, policy, &mut stats);
            prop_assert_eq!(p, ref_p, "{} boundary", policy);
            prop_assert_eq!(&d, &reference, "{} order", policy);
            prop_assert_eq!(stats, ref_stats, "{} stats", policy);

            let mut d3 = data.clone();
            let mut s3 = Stats::new();
            let lo = pivot / 2;
            let (p1, p2) = crack_in_three_policy(&mut d3, lo, pivot, policy, &mut s3);
            prop_assert!(p1 <= p2 && p2 <= d3.len(), "{} three-way bounds", policy);

            let mut out = Vec::new();
            let mut sf = Stats::new();
            let kept = scan_filter_policy(
                &data,
                Fringe::Both(QueryRange::new(lo, pivot)),
                policy,
                &mut out,
                &mut sf,
            );
            prop_assert_eq!(kept, out.len(), "{} scan_filter", policy);
        }
    }
}
