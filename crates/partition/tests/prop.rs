//! Property-based tests for the reorganization kernel.

use proptest::prelude::*;
use scrack_partition::{
    advance_job, crack_in_three, crack_in_two, introsort, is_sorted_by_key, lower_bound,
    median_partition, scan_filter, select_nth_key, split_and_materialize, Fringe, JobStatus,
    PartitionJob,
};
use scrack_types::{QueryRange, Stats};

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

proptest! {
    #[test]
    fn crack_in_two_is_correct_partition(mut data in proptest::collection::vec(0u64..1000, 0..300), pivot in 0u64..1000) {
        let before = sorted(data.clone());
        let mut stats = Stats::new();
        let p = crack_in_two(&mut data, pivot, &mut stats);
        prop_assert!(data[..p].iter().all(|e| *e < pivot));
        prop_assert!(data[p..].iter().all(|e| *e >= pivot));
        prop_assert_eq!(before, sorted(data));
    }

    #[test]
    fn crack_in_three_is_correct_partition(mut data in proptest::collection::vec(0u64..1000, 0..300), a in 0u64..1000, w in 0u64..1000) {
        let b = a.saturating_add(w).min(1000);
        let before = sorted(data.clone());
        let mut stats = Stats::new();
        let (p1, p2) = crack_in_three(&mut data, a, b, &mut stats);
        prop_assert!(p1 <= p2);
        prop_assert!(data[..p1].iter().all(|e| *e < a));
        prop_assert!(data[p1..p2].iter().all(|e| a <= *e && *e < b));
        prop_assert!(data[p2..].iter().all(|e| *e >= b));
        prop_assert_eq!(before, sorted(data));
    }

    #[test]
    fn split_and_materialize_collects_exact_result(mut data in proptest::collection::vec(0u64..1000, 0..300), pivot in 0u64..1000, a in 0u64..1000, w in 0u64..200) {
        let q = QueryRange::new(a, a.saturating_add(w));
        let expected: Vec<u64> = sorted(data.iter().copied().filter(|k| q.contains(*k)).collect());
        let before = sorted(data.clone());
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let p = split_and_materialize(&mut data, pivot, Fringe::Both(q), &mut out, &mut stats);
        prop_assert!(data[..p].iter().all(|e| *e < pivot));
        prop_assert!(data[p..].iter().all(|e| *e >= pivot));
        prop_assert_eq!(before, sorted(data));
        prop_assert_eq!(expected, sorted(out));
    }

    #[test]
    fn progressive_job_converges_to_same_partition(mut data in proptest::collection::vec(0u64..1000, 1..300), pivot in 0u64..1000, budget in 1u64..20) {
        let mut reference = data.clone();
        let mut stats = Stats::new();
        let expect_p = crack_in_two(&mut reference, pivot, &mut stats);

        let mut job = PartitionJob::new(pivot, 0, data.len());
        let mut rounds = 0;
        loop {
            let mut out = Vec::new();
            match advance_job(&mut data, &mut job, budget, Fringe::None, &mut out, &mut stats) {
                JobStatus::Done { crack_pos } => {
                    prop_assert_eq!(crack_pos, expect_p);
                    break;
                }
                JobStatus::InProgress => {
                    prop_assert!(data[..job.l].iter().all(|e| *e < pivot));
                    prop_assert!(data[job.r..].iter().all(|e| *e >= pivot));
                }
            }
            rounds += 1;
            prop_assert!(rounds <= data.len() + 2);
        }
        prop_assert_eq!(sorted(reference), sorted(data));
    }

    #[test]
    fn select_nth_matches_sorting(data in proptest::collection::vec(0u64..1000, 1..400), k_frac in 0.0f64..1.0) {
        let k = ((data.len() - 1) as f64 * k_frac) as usize;
        let expect = sorted(data.clone())[k];
        let mut d = data;
        let mut stats = Stats::new();
        prop_assert_eq!(select_nth_key(&mut d, k, &mut stats), expect);
    }

    #[test]
    fn median_partition_invariant(data in proptest::collection::vec(0u64..1000, 1..400)) {
        let mut d = data.clone();
        let mut stats = Stats::new();
        let (pos, pivot) = median_partition(&mut d, &mut stats);
        prop_assert!(d[..pos].iter().all(|e| *e < pivot));
        prop_assert!(d[pos..].iter().all(|e| *e >= pivot));
        prop_assert_eq!(sorted(data), sorted(d.clone()));
        // The split is balanced: with duplicates the boundary may shift,
        // but the median key itself must sit at rank len/2.
        let rank = d.len() / 2;
        let by_sort = {
            let mut v = d.clone();
            v.sort_unstable();
            v[rank]
        };
        prop_assert_eq!(by_sort, pivot);
    }

    #[test]
    fn introsort_sorts(data in proptest::collection::vec(0u64..10000, 0..600)) {
        let expect = sorted(data.clone());
        let mut d = data;
        let mut stats = Stats::new();
        introsort(&mut d, &mut stats);
        prop_assert!(is_sorted_by_key(&d));
        prop_assert_eq!(d, expect);
    }

    #[test]
    fn lower_bound_is_partition_point(data in proptest::collection::vec(0u64..1000, 0..300), key in 0u64..1000) {
        let d = sorted(data);
        let mut stats = Stats::new();
        prop_assert_eq!(lower_bound(&d, key, &mut stats), d.partition_point(|e| *e < key));
    }

    #[test]
    fn scan_filter_equals_std_filter(data in proptest::collection::vec(0u64..1000, 0..300), a in 0u64..1000, w in 0u64..300) {
        let q = QueryRange::new(a, a.saturating_add(w));
        let expect: Vec<u64> = data.iter().copied().filter(|k| q.contains(*k)).collect();
        let mut out = Vec::new();
        let mut stats = Stats::new();
        scan_filter(&data, Fringe::Both(q), &mut out, &mut stats);
        prop_assert_eq!(out, expect);
    }
}
