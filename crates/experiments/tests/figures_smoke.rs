//! Smoke tests: every figure module runs end to end (with oracle
//! verification on) at tiny scale and emits the expected engines/sections.

use scrack_experiments::figures;
use scrack_experiments::ExpConfig;

fn cfg() -> ExpConfig {
    ExpConfig {
        n: 5_000,
        queries: 60,
        seed: 3,
        out_dir: None,
        verify: true, // every figure run doubles as a correctness check
        ..ExpConfig::default()
    }
}

#[test]
fn fig02_runs_and_reports_all_baselines() {
    let s = figures::fig02::run(&cfg());
    for needle in ["Scan", "Crack", "Sort", "tuples touched", "Sequential"] {
        assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
    }
}

#[test]
fn fig08_sweeps_all_thresholds() {
    let s = figures::fig08::run(&cfg());
    for needle in ["L1/4", "L1/2", "L1", "L2", "3L2"] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn fig09_covers_all_stochastic_variants() {
    let s = figures::fig09::run(&cfg());
    for needle in ["DDC", "DDR", "DD1C", "DD1R", "P100%", "P50%", "P10%", "P1%"] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn fig10_runs() {
    let s = figures::fig10::run(&cfg());
    assert!(s.contains("MDD1R") && s.contains("Crack"));
}

#[test]
fn fig11_has_both_workload_tables() {
    let s = figures::fig11::run(&cfg());
    assert!(s.contains("Random workload") && s.contains("Sequential workload"));
    assert!(s.contains("Rand"), "random-selectivity column missing");
}

#[test]
fn fig12_covers_all_injectors() {
    let s = figures::fig12::run(&cfg());
    for needle in ["R1crack", "R2crack", "R4crack", "R8crack"] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn fig13_has_four_panels() {
    let s = figures::fig13::run(&cfg());
    for needle in [
        "(a) Periodic",
        "(b) Zoom out",
        "(c) Zoom in",
        "(d) Zoom in alternate",
    ] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn fig14_covers_all_hybrids() {
    let s = figures::fig14::run(&cfg());
    for needle in ["AICS", "AICC", "AICS1R", "AICC1R"] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn fig15_runs_updates() {
    let s = figures::fig15::run(&cfg());
    assert!(s.contains("Scrack") && s.contains("Crack"));
}

#[test]
fn fig16_reports_totals() {
    let s = figures::fig16::run(&cfg());
    assert!(s.contains("Totals:") && s.contains("Scrack="));
}

#[test]
fn fig17_covers_all_workloads_and_strategies() {
    let s = figures::fig17::run(&cfg());
    for needle in [
        "Periodic",
        "SkewZoomOutAlt",
        "Mixed",
        "SkyServer",
        "FiftyFifty",
        "FlipCoin",
    ] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn fig18_and_fig19_sweep_selectivity_of_application() {
    let s = figures::fig18::run(&cfg());
    assert!(s.contains("Every32"));
    let s = figures::fig19::run(&cfg());
    assert!(s.contains("ScrackMon500"));
}

#[test]
fn fig20_reports_tradeoff_frontier() {
    let s = figures::fig20::run(&cfg());
    for needle in ["DD1R", "P5%", "P10%", "first 32"] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn csv_series_written_when_out_dir_given() {
    let dir = std::env::temp_dir().join(format!("scrack_smoke_{}", std::process::id()));
    let cfg = ExpConfig {
        out_dir: Some(dir.clone()),
        ..cfg()
    };
    let _ = figures::fig10::run(&cfg);
    let csv = std::fs::read_to_string(dir.join("fig10.csv")).expect("series file");
    assert!(csv.starts_with("engine,query,cumulative_s,query_s,touched"));
    assert!(csv.lines().count() > 60);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn ext_updates_sweeps_frequency_and_volume() {
    let s = figures::ext_updates::run(&cfg());
    for needle in ["HF/LV", "LF/LV", "LF/HV", "HF/HV", "Crack/Scrack"] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn ext_io_reports_page_traffic_per_engine() {
    let s = figures::ext_io::run(&cfg());
    for needle in ["Scan", "Sort", "Crack", "MDD1R", "pages/query", "Sequential"] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn ext_chooser_reports_all_policies() {
    let s = figures::ext_chooser::run(&cfg());
    for needle in ["PieceAware", "EpsGreedy", "UCB1", "ZoomInAlt"] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn ext_metrics_scorecard_shape() {
    let s = figures::ext_metrics::run(&cfg());
    for needle in ["converged", "payoff vs Sort", "MDD1R", "Sequential workload"] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn fig07_renders_every_pattern_panel() {
    let s = figures::fig07::run(&cfg());
    for needle in ["Sequential", "ZoomInAlt", "SkewZoomOutAlt", "```text"] {
        assert!(s.contains(needle), "missing {needle:?}");
    }
}
