//! Figure 10 — the random workload: stochastic cracking must not lose the
//! properties of original cracking where original cracking is at home.

use super::{heading, run_kinds, workload};
use crate::report::cumulative_table;
use crate::runner::ExpConfig;
use scrack_core::EngineKind;
use scrack_workloads::WorkloadKind;

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 10 — random workload, all stochastic variants",
        "Every stochastic variant tracks Crack closely; Crack is only \
         marginally faster during the first few queries; Sort's high first- \
         query cost keeps it above everything for the whole run.",
    );
    let queries = workload(cfg, WorkloadKind::Random);
    let results = run_kinds(
        cfg,
        &[
            EngineKind::Sort,
            EngineKind::Ddc,
            EngineKind::Dd1c,
            EngineKind::Ddr,
            EngineKind::Dd1r,
            EngineKind::Mdd1r,
            EngineKind::Progressive { swap_pct: 50 },
            EngineKind::Crack,
        ],
        &queries,
        "fig10.csv",
    );
    out.push_str(&cumulative_table(
        &results.iter().collect::<Vec<_>>(),
        cfg.queries,
    ));
    out
}
