//! Figure 16 — the SkyServer workload: cumulative times (a) and the
//! access pattern itself (b).

use super::{fresh_data, heading};
use crate::report::{cumulative_table, format_secs, write_series};
use crate::runner::{run_engine, ExpConfig, RunResult};
use scrack_core::{build_engine, EngineKind, Oracle};
use scrack_types::QueryRange;
use scrack_workloads::{skyserver_trace, SkyServerConfig};

/// The SkyServer-style query sequence at this config's scale: the paper
/// replays 1.6×10^5 queries against 10^4 for the synthetic workloads, so
/// the trace is 16× the configured query budget (capped at the paper's
/// length).
pub(crate) fn trace(cfg: &ExpConfig) -> Vec<QueryRange> {
    let q = (cfg.queries * 16).min(160_000);
    skyserver_trace(SkyServerConfig::new(cfg.n, q, cfg.seed_for("skyserver")))
}

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let queries = trace(cfg);
    let mut out = heading(
        cfg,
        "Fig. 16 — SkyServer workload (synthetic trace, see DESIGN.md)",
        "Paper: Scrack answers all 160K queries in 25s; Crack needs >2000s; \
         full indexing 70s; plain scan >8000s. Check the ordering Scrack < \
         Sort << Crack << Scan and the ~2 orders of magnitude Crack/Scrack \
         gap.",
    );
    out.push_str(&format!("Trace length: {} queries\n\n", queries.len()));
    let mut results: Vec<RunResult> = Vec::new();
    for kind in [
        EngineKind::Crack,
        EngineKind::Mdd1r,
        EngineKind::Sort,
        EngineKind::Scan,
    ] {
        let data = fresh_data(cfg);
        let oracle = cfg.verify.then(|| Oracle::new(&data));
        let mut engine = build_engine(kind, data, cfg.crack_config(), cfg.seed_for("fig16"));
        results.push(run_engine(engine.as_mut(), &queries, oracle.as_ref()));
    }
    results[1].name = "Scrack".into();
    let refs: Vec<&RunResult> = results.iter().collect();
    write_series(cfg, "fig16.csv", &refs);
    out.push_str("### Fig. 16(a) cumulative response time\n\n");
    out.push_str(&cumulative_table(&refs, queries.len()));
    out.push_str("\nTotals: ");
    for r in &results {
        out.push_str(&format!("{}={}  ", r.name, format_secs(r.total_secs())));
    }
    out.push('\n');

    // Fig. 16(b): the access pattern; written as CSV for plotting.
    if let Some(dir) = &cfg.out_dir {
        let _ = std::fs::create_dir_all(dir);
        let mut body = String::from("query,low,high\n");
        for (i, q) in queries.iter().enumerate() {
            body.push_str(&format!("{},{},{}\n", i + 1, q.low, q.high));
        }
        let _ = std::fs::write(dir.join("fig16_access_pattern.csv"), body);
        out.push_str("\nAccess pattern written to fig16_access_pattern.csv\n");
    }
    out
}
