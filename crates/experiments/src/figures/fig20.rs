//! Figure 20 — the summary trade-off: total cumulative cost (x) vs the
//! cumulative cost of the first few queries (y), for DD1R, P5%, P10%.

use super::{fresh_data, heading, workload};
use crate::report::{format_secs, Table};
use crate::runner::{run_engine, ExpConfig, RunResult};
use scrack_core::{build_engine, EngineKind, Oracle};
use scrack_workloads::WorkloadKind;

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 20 — initialization cost vs total cost (Sequential)",
        "DD1R has the lowest total cost (leftmost); progressive variants \
         trade total cost for lighter first queries (lower y at small k): \
         P5% starts cheaper than P10% than DD1R.",
    );
    let queries = workload(cfg, WorkloadKind::Sequential);
    let kinds = [
        EngineKind::Dd1r,
        EngineKind::Progressive { swap_pct: 5 },
        EngineKind::Progressive { swap_pct: 10 },
    ];
    let results: Vec<RunResult> = kinds
        .iter()
        .map(|kind| {
            let data = fresh_data(cfg);
            let oracle = cfg.verify.then(|| Oracle::new(&data));
            let mut engine = build_engine(
                *kind,
                data,
                cfg.crack_config(),
                cfg.seed_for(&format!("fig20-{}", kind.label())),
            );
            run_engine(engine.as_mut(), &queries, oracle.as_ref())
        })
        .collect();
    let mut t = Table::new(&[
        "strategy",
        "total (x-axis)",
        "first 1",
        "first 2",
        "first 4",
        "first 8",
        "first 16",
        "first 32",
    ]);
    for r in &results {
        let mut row = vec![r.name.clone(), format_secs(r.total_secs())];
        for k in [1usize, 2, 4, 8, 16, 32] {
            row.push(format_secs(r.cumulative_secs_at(k)));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out
}
