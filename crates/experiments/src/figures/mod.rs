//! One module per reproduced figure/table; shared scaffolding here.

pub mod fig02;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;

pub mod ext_chooser;
pub mod ext_io;
pub mod ext_metrics;
pub mod ext_parallel;
pub mod ext_resilience;
pub mod ext_updates;

use crate::report::write_series;
use crate::runner::{run_engine, ExpConfig, RunResult};
use scrack_core::{build_engine, CrackConfig, EngineKind, Oracle};
use scrack_types::QueryRange;
use scrack_workloads::data::unique_permutation;
use scrack_workloads::{WorkloadKind, WorkloadSpec};

/// The paper's column: a random permutation of `0..n` bare keys.
pub(crate) fn fresh_data(cfg: &ExpConfig) -> Vec<u64> {
    unique_permutation(cfg.n, cfg.seed_for("data"))
}

/// Generates the standard workload at this config's scale.
pub(crate) fn workload(cfg: &ExpConfig, kind: WorkloadKind) -> Vec<QueryRange> {
    WorkloadSpec::new(kind, cfg.n, cfg.queries, cfg.seed_for(kind.label())).generate()
}

/// Runs one engine kind on a query sequence over fresh data.
pub(crate) fn run_kind(
    cfg: &ExpConfig,
    kind: EngineKind,
    crack_cfg: CrackConfig,
    queries: &[QueryRange],
    tag: &str,
) -> RunResult {
    let data = fresh_data(cfg);
    let oracle = cfg.verify.then(|| Oracle::new(&data));
    let mut engine = build_engine(kind, data, crack_cfg, cfg.seed_for(tag));
    run_engine(engine.as_mut(), queries, oracle.as_ref())
}

/// Runs several engine kinds on the same query sequence (each over its own
/// fresh copy of the data) and writes the combined CSV series.
pub(crate) fn run_kinds(
    cfg: &ExpConfig,
    kinds: &[EngineKind],
    queries: &[QueryRange],
    series_file: &str,
) -> Vec<RunResult> {
    let results: Vec<RunResult> = kinds
        .iter()
        .map(|k| run_kind(cfg, *k, cfg.crack_config(), queries, &k.label()))
        .collect();
    let refs: Vec<&RunResult> = results.iter().collect();
    write_series(cfg, series_file, &refs);
    results
}

/// Section header with the scale the figure ran at.
pub(crate) fn heading(cfg: &ExpConfig, title: &str, paper_shape: &str) -> String {
    format!(
        "## {title}\n\n(scale: N={}, Q={}, seed={})\n\nPaper shape to check: {paper_shape}\n\n",
        cfg.n, cfg.queries, cfg.seed
    )
}
