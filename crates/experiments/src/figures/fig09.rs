//! Figure 9 — curing the sequential workload with stochastic cracking.
//!
//! (a) the recursive variants DDC/DDR, (b) the single-crack variants
//! DD1C/DD1R, (c) progressive cracking P1%..P100%; all against Crack and
//! Sort.

use super::{heading, run_kinds, workload};
use crate::report::cumulative_table;
use crate::runner::ExpConfig;
use scrack_core::EngineKind;
use scrack_workloads::WorkloadKind;

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 9 — sequential workload under stochastic cracking",
        "All stochastic variants converge (flat cumulative curves) while \
         Crack grows linearly. DDR's first query is ~2x cheaper than DDC's; \
         DD1C/DD1R cut initialization further; P1% starts at Crack-level \
         first-query cost and still converges after ~20 queries.",
    );
    let queries = workload(cfg, WorkloadKind::Sequential);

    out.push_str("### Fig. 9(a) — DDC and DDR\n\n");
    let results = run_kinds(
        cfg,
        &[
            EngineKind::Sort,
            EngineKind::Crack,
            EngineKind::Ddc,
            EngineKind::Ddr,
        ],
        &queries,
        "fig09a.csv",
    );
    out.push_str(&cumulative_table(
        &results.iter().collect::<Vec<_>>(),
        cfg.queries,
    ));

    out.push_str("\n### Fig. 9(b) — DD1C and DD1R\n\n");
    let results = run_kinds(
        cfg,
        &[
            EngineKind::Sort,
            EngineKind::Crack,
            EngineKind::Dd1c,
            EngineKind::Dd1r,
        ],
        &queries,
        "fig09b.csv",
    );
    out.push_str(&cumulative_table(
        &results.iter().collect::<Vec<_>>(),
        cfg.queries,
    ));

    out.push_str("\n### Fig. 9(c) — progressive stochastic cracking\n\n");
    let results = run_kinds(
        cfg,
        &[
            EngineKind::Sort,
            EngineKind::Crack,
            EngineKind::Progressive { swap_pct: 100 },
            EngineKind::Progressive { swap_pct: 50 },
            EngineKind::Progressive { swap_pct: 10 },
            EngineKind::Progressive { swap_pct: 1 },
        ],
        &queries,
        "fig09c.csv",
    );
    out.push_str(&cumulative_table(
        &results.iter().collect::<Vec<_>>(),
        cfg.queries,
    ));
    out
}
