//! Figure 12 — naive approaches: injecting stand-alone random queries.

use super::{heading, run_kinds, workload};
use crate::report::cumulative_table;
use crate::runner::ExpConfig;
use scrack_core::EngineKind;
use scrack_workloads::WorkloadKind;

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 12 — naive random-query injection vs integrated stochastic \
         cracking (Sequential)",
        "R{1,2,4,8}crack beat Crack by about an order of magnitude but \
         Scrack gains another order of magnitude and converges (flat \
         curve) while the naive variants keep paying.",
    );
    let queries = workload(cfg, WorkloadKind::Sequential);
    let results = run_kinds(
        cfg,
        &[
            EngineKind::Crack,
            EngineKind::RandomInject { every: 1 },
            EngineKind::RandomInject { every: 2 },
            EngineKind::RandomInject { every: 4 },
            EngineKind::RandomInject { every: 8 },
            EngineKind::Mdd1r,
        ],
        &queries,
        "fig12.csv",
    );
    out.push_str(&cumulative_table(
        &results.iter().collect::<Vec<_>>(),
        cfg.queries,
    ));
    out
}
