//! Extension — concurrent cracking throughput (§6's open problem).
//!
//! §6 names concurrency control as open cracking work ("the physical
//! reorganizations have to be synchronized, possibly with proper fine
//! grained locking"); Alvarez et al. (DaMoN 2014) show partition-parallel
//! and batched execution are how adaptive indexes scale on multi-core.
//! This experiment sweeps thread counts over two `scrack_parallel`
//! execution shapes on the robust stochastic engine:
//!
//! * `batch` — [`BatchScheduler`]: queries grouped by key region, run
//!   partition-parallel over key-disjoint shards (`--batch` sets the
//!   batch size, `--threads` the shard counts);
//! * `chunked` — [`ChunkedCracker`]: parallel-chunked cracking over
//!   private chunks that partition-merge into key-disjoint shards a
//!   quarter of the way into the stream (Alvarez et al.'s adaptive
//!   route to the same layout `batch` builds up front);
//! * `piecelock` — [`PieceLockedCracker`]: per-piece locks, one query
//!   stream per thread.
//!
//! The full sweep (more strategies, p99 latency, scaling efficiency,
//! JSON baseline) lives in the `scrack_throughput` binary; this section
//! is the quick in-harness view.

use super::{fresh_data, heading, workload};
use crate::report::Table;
use crate::runner::ExpConfig;
use scrack_parallel::{BatchScheduler, ChunkedCracker, ParallelStrategy, PieceLockedCracker};
use scrack_types::QueryRange;
use scrack_workloads::WorkloadKind;
use std::sync::Arc;
use std::time::Instant;

/// Batched partition-parallel run; returns (queries/sec, result checksum).
fn run_batched(cfg: &ExpConfig, data: &[u64], queries: &[QueryRange], threads: usize) -> (f64, u64) {
    let mut sched = BatchScheduler::new(
        data.to_vec(),
        threads,
        ParallelStrategy::Stochastic,
        cfg.crack_config(),
        cfg.seed_for("ext-parallel-batch"),
    );
    let mut checksum = 0u64;
    let t0 = Instant::now();
    for chunk in queries.chunks(cfg.batch.max(1)) {
        for (c, s) in sched.execute(chunk) {
            checksum = checksum.wrapping_add(c as u64).wrapping_add(s);
        }
    }
    (queries.len() as f64 / t0.elapsed().as_secs_f64().max(1e-12), checksum)
}

/// Parallel-chunked run (chunks partition-merge a quarter of the way
/// into the stream); returns (queries/sec, result checksum).
fn run_chunked(cfg: &ExpConfig, data: &[u64], queries: &[QueryRange], threads: usize) -> (f64, u64) {
    let mut cc = ChunkedCracker::new(
        data.to_vec(),
        threads,
        ParallelStrategy::Stochastic,
        cfg.crack_config(),
        cfg.seed_for("ext-parallel-chunked"),
    )
    .with_merge_after((queries.len() / 4).max(1));
    let mut checksum = 0u64;
    let t0 = Instant::now();
    for chunk in queries.chunks(cfg.batch.max(1)) {
        for (c, s) in cc.execute(chunk) {
            checksum = checksum.wrapping_add(c as u64).wrapping_add(s);
        }
    }
    (queries.len() as f64 / t0.elapsed().as_secs_f64().max(1e-12), checksum)
}

/// Piece-locked run, one strided query stream per thread; returns
/// (queries/sec, result checksum).
fn run_piecelocked(
    cfg: &ExpConfig,
    data: &[u64],
    queries: &[QueryRange],
    threads: usize,
) -> (f64, u64) {
    let plc = Arc::new(PieceLockedCracker::new(
        data.to_vec(),
        ParallelStrategy::Stochastic,
        cfg.crack_config(),
        cfg.seed_for("ext-parallel-plc"),
    ));
    let t0 = Instant::now();
    let checksum = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let plc = Arc::clone(&plc);
                scope.spawn(move || {
                    queries
                        .iter()
                        .skip(t)
                        .step_by(threads)
                        .fold(0u64, |acc, q| {
                            let (c, s) = plc.select_aggregate(*q);
                            acc.wrapping_add(c as u64).wrapping_add(s)
                        })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .fold(0u64, u64::wrapping_add)
    });
    (queries.len() as f64 / t0.elapsed().as_secs_f64().max(1e-12), checksum)
}

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Extension — concurrent cracking throughput (§6 + Alvarez et al.)",
        "Every thread count and strategy must return oracle-identical \
         answers (checksums agree row to row per workload); on multi-core \
         hardware queries/sec grows with threads, with the batched \
         partition-parallel path scaling best.",
    );
    out.push_str(&format!(
        "(threads swept: {:?}; batch size: {}; host CPUs: {})\n\n",
        cfg.threads,
        cfg.batch,
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    ));
    let data = fresh_data(cfg);
    for wk in [WorkloadKind::Random, WorkloadKind::Sequential, WorkloadKind::Skew] {
        let queries = workload(cfg, wk);
        let mut table = Table::new(&["strategy", "threads", "queries/sec", "result checksum"]);
        let mut seen: Option<u64> = None;
        for &threads in &cfg.threads {
            for (name, (qps, checksum)) in [
                ("batch", run_batched(cfg, &data, &queries, threads)),
                ("chunked", run_chunked(cfg, &data, &queries, threads)),
                ("piecelock", run_piecelocked(cfg, &data, &queries, threads)),
            ] {
                let expect = *seen.get_or_insert(checksum);
                assert_eq!(
                    expect, checksum,
                    "{}: {name}/t{threads} diverged from the other strategies",
                    wk.label()
                );
                table.row(vec![
                    name.into(),
                    threads.to_string(),
                    format!("{qps:.0}"),
                    format!("{checksum:#018x}"),
                ]);
            }
        }
        out.push_str(&format!("**{} workload**\n\n{}\n", wk.label(), table.render()));
    }
    out
}
