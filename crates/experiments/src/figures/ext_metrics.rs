//! Extension — the adaptive-indexing benchmark scorecard (reference \[10\]).
//!
//! §2 adopts the benchmark of Graefe et al. (TPCTC 2010): initialization
//! cost judged against a full scan, convergence against a full index, and
//! a good adaptive technique "should strike a balance between those two
//! conflicting parameters". This experiment computes that scorecard for
//! every cracking family member on the benign and the pathological
//! workload.
//!
//! Costs are wall-clock, as in \[10\] — convergence *must* be judged on
//! time, because on tuple counters a converged cracker still scans its
//! (≤ L1-sized) end pieces while a full index probes O(log n) tuples, so
//! the counter ratio never closes by design. The convergence slack α
//! covers the small-scale gap between an L1-piece scan and an all-cached
//! binary search; at the paper's N = 10⁸ a tighter α suffices.

use super::{heading, run_kind, workload};
use crate::metrics::{analyze, by_time};
use crate::report::Table;
use crate::runner::ExpConfig;
use scrack_core::{EngineKind};
use scrack_workloads::WorkloadKind;

fn fmt_opt(q: Option<usize>) -> String {
    q.map_or("never".into(), |i| format!("@{}", i + 1))
}

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Extension — adaptive-indexing benchmark scorecard (ref [10], wall-clock, α=16)",
        "Cracking engines must initialize at ~scan cost (first-query ratio \
         ~1-2) and converge; on Sequential, original cracking must show \
         'never' where the stochastic family shows finite convergence and \
         payoff points.",
    );
    for wk in [WorkloadKind::Random, WorkloadKind::Sequential] {
        let queries = workload(cfg, wk);
        let scan = run_kind(cfg, EngineKind::Scan, cfg.crack_config(), &queries, "m-scan");
        let sort = run_kind(cfg, EngineKind::Sort, cfg.crack_config(), &queries, "m-sort");
        let mut table = Table::new(&[
            "engine",
            "1st query vs Scan",
            "init window vs Scan",
            "converged",
            "payoff vs Scan",
            "payoff vs Sort",
            "total vs Sort",
        ]);
        for kind in [
            EngineKind::Crack,
            EngineKind::Ddc,
            EngineKind::Ddr,
            EngineKind::Dd1r,
            EngineKind::Mdd1r,
            EngineKind::Progressive { swap_pct: 10 },
        ] {
            let r = run_kind(cfg, kind, cfg.crack_config(), &queries, "m-eng");
            let m = analyze(&r, &scan, &sort, by_time, 16.0, 8);
            table.row(vec![
                m.name,
                format!("{:.2}x", m.first_query_vs_scan),
                format!("{:.2}x", m.init_window_vs_scan),
                fmt_opt(m.convergence_query),
                fmt_opt(m.payoff_vs_scan),
                fmt_opt(m.payoff_vs_sort),
                format!("{:.2}x", m.total_vs_sort),
            ]);
        }
        out.push_str(&format!("### {wk:?} workload\n\n"));
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}
