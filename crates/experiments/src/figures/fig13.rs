//! Figure 13 — various workloads under stochastic cracking: Periodic,
//! ZoomOut, ZoomIn, ZoomInAlt.

use super::{heading, run_kinds, workload};
use crate::report::cumulative_table;
use crate::runner::ExpConfig;
use scrack_core::EngineKind;
use scrack_workloads::WorkloadKind;

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 13 — Periodic / ZoomOut / ZoomIn / ZoomInAlt",
        "Scrack stays flat on all four; Crack fails on ZoomOut and \
         ZoomInAlt (orders of magnitude slower, losing even to Sort) and \
         merely survives Periodic/ZoomIn.",
    );
    let kinds = [EngineKind::Sort, EngineKind::Crack, EngineKind::Mdd1r];
    for (sub, wk) in [
        ("(a) Periodic", WorkloadKind::Periodic),
        ("(b) Zoom out", WorkloadKind::ZoomOut),
        ("(c) Zoom in", WorkloadKind::ZoomIn),
        ("(d) Zoom in alternate", WorkloadKind::ZoomInAlt),
    ] {
        out.push_str(&format!("### Fig. 13{sub}\n\n"));
        let queries = workload(cfg, wk);
        let results = run_kinds(cfg, &kinds, &queries, &format!("fig13_{}.csv", wk.label()));
        out.push_str(&cumulative_table(
            &results.iter().collect::<Vec<_>>(),
            cfg.queries,
        ));
        out.push('\n');
    }
    out
}
