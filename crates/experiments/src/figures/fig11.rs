//! Figure 11 (table) — varying selectivity.
//!
//! Cumulative time for 10^3 queries at selectivity fractions 10^-7,
//! 10^-2, 0.10, 0.50 of the domain, plus random selectivity, on the
//! Random and Sequential workloads, for Scan / Sort / Crack / DD1R / P10%.

use super::{fresh_data, heading};
use crate::report::{format_secs, Table};
use crate::runner::{run_engine, ExpConfig, RunResult};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_core::{build_engine, EngineKind, Oracle};
use scrack_types::QueryRange;
use scrack_workloads::{WorkloadKind, WorkloadSpec};

/// One selectivity column of the table.
enum Sel {
    /// A fixed fraction of the domain (with its column label).
    Frac(f64, &'static str),
    /// Uniform random width per query.
    Rand,
}

/// Builds the query sequence for a workload at one selectivity setting.
fn queries_for(cfg: &ExpConfig, wk: WorkloadKind, sel: &Sel, q: usize) -> Vec<QueryRange> {
    match sel {
        Sel::Frac(f, label) => {
            let s = ((cfg.n as f64 * f) as u64).max(1);
            WorkloadSpec {
                kind: wk,
                n: cfg.n,
                queries: q,
                selectivity: s,
                seed: cfg.seed_for(&format!("fig11-{label}")),
            }
            .generate()
        }
        Sel::Rand => {
            // Same positions as the S=10 sequence, widths re-drawn
            // uniformly per query.
            let base = WorkloadSpec {
                kind: wk,
                n: cfg.n,
                queries: q,
                selectivity: 10,
                seed: cfg.seed_for("fig11-rand"),
            }
            .generate();
            let mut rng = SmallRng::seed_from_u64(cfg.seed_for("fig11-rand-widths"));
            base.into_iter()
                .map(|r| {
                    let w = rng.gen_range(1..cfg.n / 2);
                    QueryRange::new(r.low.min(cfg.n - w), r.low.min(cfg.n - w) + w)
                })
                .collect()
        }
    }
}

fn run_cell(cfg: &ExpConfig, kind: EngineKind, queries: &[QueryRange]) -> RunResult {
    let data = fresh_data(cfg);
    let oracle = cfg.verify.then(|| Oracle::new(&data));
    let mut engine = build_engine(
        kind,
        data,
        cfg.crack_config(),
        cfg.seed_for(&format!("fig11-{}", kind.label())),
    );
    run_engine(engine.as_mut(), queries, oracle.as_ref())
}

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    // The paper's table runs 10^3 queries.
    let q = cfg.queries.min(1_000);
    let mut out = heading(
        cfg,
        "Fig. 11 — varying selectivity (cumulative time, 10^3 queries)",
        "Stochastic cracking keeps its decisive advantage on Sequential at \
         every selectivity; on Random it costs slightly more than Crack. \
         Scan and P10% grow with selectivity (result materialization); \
         view-returning strategies do not.",
    );
    let sels = [
        Sel::Frac(1e-7, "1e-7"),
        Sel::Frac(1e-2, "1e-2"),
        Sel::Frac(0.10, "10%"),
        Sel::Frac(0.50, "50%"),
        Sel::Rand,
    ];
    let kinds = [
        EngineKind::Scan,
        EngineKind::Sort,
        EngineKind::Crack,
        EngineKind::Dd1r,
        EngineKind::Progressive { swap_pct: 10 },
    ];
    for wk in [WorkloadKind::Random, WorkloadKind::Sequential] {
        out.push_str(&format!("### {} workload\n\n", wk.label()));
        let mut t = Table::new(&["Algorithm", "1e-7", "1e-2", "10%", "50%", "Rand"]);
        // Precompute per-selectivity query sets (shared across engines).
        let qsets: Vec<Vec<QueryRange>> = sels.iter().map(|s| queries_for(cfg, wk, s, q)).collect();
        for kind in kinds {
            let mut row = vec![kind.label()];
            for qs in &qsets {
                let r = run_cell(cfg, kind, qs);
                row.push(format_secs(r.total_secs()));
            }
            t.row(row);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}
