//! Extension — §6's dynamic algorithm chooser, evaluated.
//!
//! The paper's summary (§5) establishes that continuous stochastic
//! cracking is the robust *fixed* choice. This experiment asks the §6
//! follow-up: can a per-query decision component do better — matching
//! Crack's marginal win on random workloads while keeping Scrack's
//! robustness on focused ones? Policies: a deterministic piece-size cost
//! model and two learned bandits, against the fixed strategies.

use super::{fresh_data, heading, workload};
use crate::report::{format_secs, Table};
use crate::runner::ExpConfig;
use scrack_chooser::{ChooserEngine, PolicyKind};
use scrack_core::{build_engine, Engine, EngineKind};
use scrack_types::QueryRange;
use scrack_workloads::WorkloadKind;
use std::time::Instant;

fn time_engine(engine: &mut dyn Engine<u64>, queries: &[QueryRange]) -> (f64, u64) {
    let t0 = Instant::now();
    for q in queries {
        std::hint::black_box(engine.select(*q).len());
    }
    (t0.elapsed().as_secs_f64(), engine.stats().touched)
}

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Extension — dynamic algorithm selection (§6 future work)",
        "Every chooser policy must avoid Crack's collapse on the focused \
         workloads; the interesting margin is on Random, where Crack is \
         the cheapest fixed choice and the policies pay their exploration.",
    );
    let workloads = [
        WorkloadKind::Random,
        WorkloadKind::Sequential,
        WorkloadKind::ZoomInAlt,
        WorkloadKind::Periodic,
    ];
    let mut table = Table::new(&[
        "workload", "Crack", "Scrack", "PieceAware", "EpsGreedy", "UCB1", "CtxEps",
    ]);
    for wk in workloads {
        let queries = workload(cfg, wk);
        let mut cells = vec![format!("{wk:?}")];
        for fixed in [EngineKind::Crack, EngineKind::Mdd1r] {
            let mut engine = build_engine(
                fixed,
                fresh_data(cfg),
                cfg.crack_config(),
                cfg.seed_for("extch"),
            );
            let (secs, _) = time_engine(engine.as_mut(), &queries);
            cells.push(format_secs(secs));
        }
        for policy in [
            PolicyKind::PieceAware,
            PolicyKind::EpsilonGreedy,
            PolicyKind::Ucb1,
            PolicyKind::Contextual,
        ] {
            let mut engine = ChooserEngine::from_kind(
                fresh_data(cfg),
                cfg.crack_config(),
                cfg.seed_for("extch-p"),
                policy,
            );
            let (secs, _) = time_engine(&mut engine, &queries);
            cells.push(format_secs(secs));
        }
        table.row(cells);
    }
    out.push_str(&table.render());
    out
}
