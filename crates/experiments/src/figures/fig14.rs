//! Figure 14 — adaptive indexing hybrids (AICC/AICS) and their stochastic
//! variants, on the sequential workload.

use super::{fresh_data, heading, workload};
use crate::report::{cumulative_table, write_series};
use crate::runner::{run_engine, ExpConfig, RunResult};
use scrack_core::{CrackEngine, Engine, Oracle};
use scrack_hybrids::{HybridEngine, HybridKind};
use scrack_workloads::WorkloadKind;

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 14 — stochastic hybrids (Sequential)",
        "AICS and AICC fail like Crack (blinkered query-driven behaviour, \
         plus merge overhead making them slightly slower); AICS1R and \
         AICC1R converge to low response times.",
    );
    let queries = workload(cfg, WorkloadKind::Sequential);
    let mut results: Vec<RunResult> = Vec::new();
    for kind in [
        HybridKind::CrackSort,
        HybridKind::CrackCrack,
        HybridKind::CrackSort1R,
        HybridKind::CrackCrack1R,
    ] {
        let data = fresh_data(cfg);
        let oracle = cfg.verify.then(|| Oracle::new(&data));
        let mut eng = HybridEngine::new(
            kind,
            data,
            cfg.crack_config(),
            cfg.seed_for(kind.label()),
        );
        results.push(run_engine(
            &mut eng as &mut dyn Engine<u64>,
            &queries,
            oracle.as_ref(),
        ));
    }
    // Plain cracking as the reference point.
    {
        let data = fresh_data(cfg);
        let oracle = cfg.verify.then(|| Oracle::new(&data));
        let mut eng = CrackEngine::new(data, cfg.crack_config());
        results.push(run_engine(
            &mut eng as &mut dyn Engine<u64>,
            &queries,
            oracle.as_ref(),
        ));
    }
    let refs: Vec<&RunResult> = results.iter().collect();
    write_series(cfg, "fig14.csv", &refs);
    out.push_str(&cumulative_table(&refs, cfg.queries));
    out
}
