//! Figure 2 — basic cracking performance.
//!
//! Scan vs Crack vs Sort on the Random and Sequential workloads:
//! per-query response times (a, b), cumulative times (c, d), and the
//! tuples each cracking query touches (e).

use super::{heading, run_kinds, workload};
use crate::report::{cumulative_table, format_secs, log_checkpoints, Table};
use crate::runner::ExpConfig;
use scrack_core::EngineKind;
use scrack_workloads::WorkloadKind;

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let kinds = [EngineKind::Scan, EngineKind::Crack, EngineKind::Sort];
    let mut out = heading(
        cfg,
        "Fig. 2 — basic cracking performance (Scan / Crack / Sort)",
        "Random: Crack converges toward Sort's per-query time without ever \
         being much slower than Scan; Sort pays everything on query 1 and \
         has not amortized over Crack even after 10^4 queries. Sequential: \
         Crack stays at Scan-level per-query cost (no convergence) and Sort \
         amortizes after ~100 queries. Touched tuples: Random drops fast, \
         Sequential decays only linearly.",
    );

    for (wk, label) in [
        (WorkloadKind::Random, "Random"),
        (WorkloadKind::Sequential, "Sequential"),
    ] {
        let queries = workload(cfg, wk);
        let results = run_kinds(cfg, &kinds, &queries, &format!("fig02_{label}.csv"));
        let refs: Vec<&_> = results.iter().collect();

        out.push_str(&format!(
            "### Fig. 2({}) per-query response time — {label} workload\n\n",
            if wk == WorkloadKind::Random { "a" } else { "b" }
        ));
        let mut t = Table::new(&["query#", "Scan", "Crack", "Sort"]);
        for k in log_checkpoints(cfg.queries) {
            t.row(vec![
                k.to_string(),
                format_secs(results[0].query_secs(k - 1)),
                format_secs(results[1].query_secs(k - 1)),
                format_secs(results[2].query_secs(k - 1)),
            ]);
        }
        out.push_str(&t.render());

        out.push_str(&format!(
            "\n### Fig. 2({}) cumulative time — {label} workload\n\n",
            if wk == WorkloadKind::Random { "c" } else { "d" }
        ));
        out.push_str(&cumulative_table(&refs, cfg.queries));

        out.push_str(&format!(
            "\n### Fig. 2(e) tuples touched by cracking — {label} workload\n\n"
        ));
        let mut t = Table::new(&["query#", "tuples touched (Crack)"]);
        for k in log_checkpoints(cfg.queries) {
            t.row(vec![
                k.to_string(),
                results[1].per_query_touched[k - 1].to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}
