//! Extension — update frequency/volume sweep.
//!
//! Fig. 15 shows one update scenario (10 random inserts every 10
//! queries); the paper notes "we obtained the same behavior with varying
//! update frequency (as in \[17\])". This experiment varies both frequency
//! and volume across the four quadrants of \[17\]'s taxonomy and checks the
//! same conclusion: stochastic cracking's advantage is insensitive to the
//! update load.

use super::{fresh_data, heading, workload};
use crate::report::{format_secs, Table};
use crate::runner::ExpConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_core::{CrackEngine, Engine, Mdd1rEngine};
use scrack_types::QueryRange;
use scrack_updates::{CrackAccess, Updatable};
use scrack_workloads::WorkloadKind;
use std::time::Instant;

/// Total wall-clock for a full interleaved run.
fn run_total<Eng>(
    mut engine: Updatable<Eng, u64>,
    queries: &[QueryRange],
    n: u64,
    seed: u64,
    period: usize,
    batch: usize,
) -> f64
where
    Eng: Engine<u64> + CrackAccess<u64>,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let t0 = Instant::now();
    for (i, q) in queries.iter().enumerate() {
        if i % period == 0 {
            for _ in 0..batch {
                engine.insert(rng.gen_range(0..n));
            }
        }
        std::hint::black_box(engine.select(*q).len());
    }
    t0.elapsed().as_secs_f64()
}

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Extension — update frequency/volume sweep (Sequential workload)",
        "Scrack beats Crack by a stable factor in every quadrant of the \
         frequency x volume grid; update load shifts absolute costs, not \
         the robustness ordering.",
    );
    let queries = workload(cfg, WorkloadKind::Sequential);
    // (label, period, batch): updates arrive as `batch` inserts every
    // `period` queries.
    let scenarios: [(&str, usize, usize); 5] = [
        ("none", usize::MAX, 0),
        ("HF/LV: 10 every 10", 10, 10),
        ("LF/LV: 10 every 100", 100, 10),
        ("LF/HV: 1000 every 1000", 1000, 1000),
        ("HF/HV: 100 every 10", 10, 100),
    ];
    let mut table = Table::new(&["scenario", "Crack", "Scrack", "Crack/Scrack"]);
    for (label, period, batch) in scenarios {
        let crack = run_total(
            Updatable::new(CrackEngine::new(fresh_data(cfg), cfg.crack_config())),
            &queries,
            cfg.n,
            cfg.seed_for("extu-c"),
            period,
            batch,
        );
        let scrack = run_total(
            Updatable::new(Mdd1rEngine::new(
                fresh_data(cfg),
                cfg.crack_config(),
                cfg.seed_for("extu-s"),
            )),
            &queries,
            cfg.n,
            cfg.seed_for("extu-s2"),
            period,
            batch,
        );
        table.row(vec![
            label.to_string(),
            format_secs(crack),
            format_secs(scrack),
            format!("{:.1}x", crack / scrack),
        ]);
    }
    out.push_str(&table.render());
    out
}
