//! Extension — update frequency/volume sweep + merge-policy comparison.
//!
//! Fig. 15 shows one update scenario (10 random inserts every 10
//! queries); the paper notes "we obtained the same behavior with varying
//! update frequency (as in \[17\])". This experiment varies both frequency
//! and volume across the four quadrants of \[17\]'s taxonomy and checks the
//! same conclusion: stochastic cracking's advantage is insensitive to the
//! update load.
//!
//! The second table compares the two [`scrack_core::UpdatePolicy`]
//! implementations — per-element Ripple vs the batched merge-ripple —
//! across the engine zoo on a high-volume mixed stream. Answers are
//! bit-identical (pinned by `crates/updates/tests/prop.rs`); only the
//! wall-clock may differ, and the ratio column is the measured payoff.

use super::{fresh_data, heading, workload};
use crate::report::{format_secs, Table};
use crate::runner::ExpConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_core::{Engine, EngineKind, UpdatePolicy};
use scrack_types::QueryRange;
use scrack_updates::{build_update_engine, CrackAccess, Updatable};
use scrack_workloads::{MixedOp, MixedWorkloadSpec, WorkloadKind};
use std::time::Instant;

/// Total wall-clock for a full interleaved run.
fn run_total<Eng>(
    mut engine: Updatable<Eng, u64>,
    queries: &[QueryRange],
    n: u64,
    seed: u64,
    period: usize,
    batch: usize,
) -> f64
where
    Eng: Engine<u64> + CrackAccess<u64>,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let t0 = Instant::now();
    for (i, q) in queries.iter().enumerate() {
        if i % period == 0 {
            for _ in 0..batch {
                engine.insert(rng.gen_range(0..n));
            }
        }
        std::hint::black_box(engine.select(*q).len());
    }
    t0.elapsed().as_secs_f64()
}

/// Total wall-clock for a [`MixedWorkloadSpec`] stream under one policy.
fn run_mixed(cfg: &ExpConfig, kind: EngineKind, policy: UpdatePolicy, ops: &[MixedOp]) -> f64 {
    let config = cfg.crack_config().with_update(policy);
    let mut engine = build_update_engine::<u64>(kind, fresh_data(cfg), config, cfg.seed_for("extu-m"));
    let t0 = Instant::now();
    for op in ops {
        match *op {
            MixedOp::Query(q) => {
                std::hint::black_box(engine.select(q).len());
            }
            MixedOp::Insert(k) => engine.insert(k),
            MixedOp::Delete(k) => engine.delete(k),
        }
    }
    engine.flush();
    t0.elapsed().as_secs_f64()
}

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Extension — update frequency/volume sweep (Sequential workload)",
        "Scrack beats Crack by a stable factor in every quadrant of the \
         frequency x volume grid; update load shifts absolute costs, not \
         the robustness ordering. The second table shows the batched \
         merge-ripple's wall-clock win over per-element Ripple per engine \
         (answers are bit-identical; see crates/updates/tests/prop.rs).",
    );
    let queries = workload(cfg, WorkloadKind::Sequential);
    // (label, period, batch): updates arrive as `batch` inserts every
    // `period` queries.
    let scenarios: [(&str, usize, usize); 5] = [
        ("none", usize::MAX, 0),
        ("HF/LV: 10 every 10", 10, 10),
        ("LF/LV: 10 every 100", 100, 10),
        ("LF/HV: 1000 every 1000", 1000, 1000),
        ("HF/HV: 100 every 10", 10, 100),
    ];
    let mut table = Table::new(&["scenario", "Crack", "Scrack", "Crack/Scrack"]);
    for (label, period, batch) in scenarios {
        let crack = run_total(
            build_update_engine(EngineKind::Crack, fresh_data(cfg), cfg.crack_config(), 0),
            &queries,
            cfg.n,
            cfg.seed_for("extu-c"),
            period,
            batch,
        );
        let scrack = run_total(
            build_update_engine(
                EngineKind::Mdd1r,
                fresh_data(cfg),
                cfg.crack_config(),
                cfg.seed_for("extu-s"),
            ),
            &queries,
            cfg.n,
            cfg.seed_for("extu-s2"),
            period,
            batch,
        );
        table.row(vec![
            label.to_string(),
            format_secs(crack),
            format_secs(scrack),
            format!("{:.1}x", crack / scrack),
        ]);
    }
    out.push_str(&table.render());

    // Merge-policy comparison: a high-volume uniform mixed stream (the
    // BENCH_5 "uniform" shape at this run's scale) across the engine zoo.
    let ops = MixedWorkloadSpec::fig15(WorkloadKind::Random, cfg.n, cfg.queries, cfg.seed)
        .with_update_rate(10.0)
        .with_burst(100)
        .with_insert_fraction(0.6)
        .generate();
    out.push_str("\nMerge policy: per-element Ripple vs batched merge-ripple\n\n");
    let mut policy_table = Table::new(&["engine", "per-element", "batched", "per-elem/batched"]);
    for kind in [
        EngineKind::Crack,
        EngineKind::Mdd1r,
        EngineKind::Ddc,
        EngineKind::Dd1r,
        EngineKind::Progressive { swap_pct: 10 },
        EngineKind::EveryX { x: 2 },
    ] {
        let per_elem = run_mixed(cfg, kind, UpdatePolicy::PerElement, &ops);
        let batched = run_mixed(cfg, kind, UpdatePolicy::Batched, &ops);
        policy_table.row(vec![
            kind.label(),
            format_secs(per_elem),
            format_secs(batched),
            format!("{:.1}x", per_elem / batched),
        ]);
    }
    out.push_str(&policy_table.render());
    out
}
