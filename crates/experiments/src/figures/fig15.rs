//! Figure 15 — adaptive updates: high-frequency, low-volume updates
//! interleaved with the sequential workload.

use super::{fresh_data, heading, workload};
use crate::report::{cumulative_table, write_series};
use crate::runner::{ExpConfig, RunResult};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_core::{CrackEngine, Engine, Mdd1rEngine};
use scrack_types::QueryRange;
use scrack_updates::{CrackAccess, Updatable};
use scrack_workloads::WorkloadKind;
use std::time::Instant;

/// Runs `engine` over the sequence, injecting `batch` random inserts every
/// `period` queries (the paper's high-frequency / low-volume scenario:
/// 10 updates every 10 queries).
fn run_with_updates<Eng>(
    mut engine: Updatable<Eng, u64>,
    queries: &[QueryRange],
    n: u64,
    seed: u64,
    period: usize,
    batch: usize,
) -> RunResult
where
    Eng: Engine<u64> + CrackAccess<u64>,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut per_query_ns = Vec::with_capacity(queries.len());
    let mut per_query_touched = Vec::with_capacity(queries.len());
    let mut total = 0u64;
    let mut prev = engine.stats();
    for (i, q) in queries.iter().enumerate() {
        if i % period == 0 {
            for _ in 0..batch {
                engine.insert(rng.gen_range(0..n));
            }
        }
        let t0 = Instant::now();
        let out = engine.select(*q);
        per_query_ns.push(t0.elapsed().as_nanos() as u64);
        total += std::hint::black_box(out.len()) as u64;
        let now = engine.stats();
        per_query_touched.push(now.since(&prev).touched);
        prev = now;
    }
    RunResult {
        name: engine.name(),
        per_query_ns,
        per_query_touched,
        final_stats: engine.stats(),
        total_result_tuples: total,
    }
}

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 15 — high-frequency low-volume updates (Sequential, 10 \
         random inserts every 10 queries)",
        "Scrack keeps its robust, flat cumulative curve under updates; \
         Crack keeps failing exactly as without updates — the Ripple merge \
         does not disturb either behaviour.",
    );
    let queries = workload(cfg, WorkloadKind::Sequential);
    let crack = Updatable::new(CrackEngine::new(fresh_data(cfg), cfg.crack_config()));
    let scrack = Updatable::new(Mdd1rEngine::new(
        fresh_data(cfg),
        cfg.crack_config(),
        cfg.seed_for("fig15-scrack"),
    ));
    let results = vec![
        run_with_updates(crack, &queries, cfg.n, cfg.seed_for("fig15-upd1"), 10, 10),
        run_with_updates(scrack, &queries, cfg.n, cfg.seed_for("fig15-upd2"), 10, 10),
    ];
    // Disambiguate the two engine names in the report.
    let mut results = results;
    results[1].name = "Scrack".into();
    let refs: Vec<&RunResult> = results.iter().collect();
    write_series(cfg, "fig15.csv", &refs);
    out.push_str(&cumulative_table(&refs, cfg.queries));
    out
}
