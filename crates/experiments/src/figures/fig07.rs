//! Figure 7 — the synthetic workload patterns themselves.
//!
//! Fig. 7 plots, for each workload, how the query sequence walks the
//! attribute value domain. This module regenerates it: a CSV series
//! `(query, low, high)` per workload for plotting, plus an ASCII
//! rendering in the report so the pattern shapes (diagonal sweep,
//! zooming wedges, alternating combs, skewed bands…) are verifiable at a
//! glance without a plotting step.

use super::heading;
use crate::runner::ExpConfig;
use scrack_workloads::{WorkloadKind, WorkloadSpec};

/// Width/height of the ASCII pattern panel.
const COLS: usize = 64;
const ROWS: usize = 16;

/// Renders one workload's access pattern as an ASCII panel: x = query
/// sequence, y = attribute domain (top = high), `#` marking the queried
/// range.
fn ascii_panel(kind: WorkloadKind, n: u64, queries: usize, seed: u64) -> String {
    let spec = WorkloadSpec::new(kind, n, queries, seed);
    let qs = spec.generate();
    let mut grid = vec![[b' '; COLS]; ROWS];
    for (i, q) in qs.iter().enumerate() {
        let col = i * COLS / qs.len();
        // Rows are top-down: row 0 = domain top.
        let hi_row = ROWS - 1 - (q.high.min(n - 1) as usize * ROWS / n as usize).min(ROWS - 1);
        let lo_row = ROWS - 1 - (q.low.min(n - 1) as usize * ROWS / n as usize).min(ROWS - 1);
        for row in grid.iter_mut().take(lo_row + 1).skip(hi_row) {
            row[col] = b'#';
        }
    }
    let mut out = String::with_capacity((COLS + 2) * ROWS);
    for row in &grid {
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out
}

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 7 — workload patterns over the value domain",
        "Each panel must show its namesake shape: Random = noise, \
         Sequential = a diagonal, ZoomIn = a closing wedge, Periodic = \
         repeated diagonals, the Alt patterns = two interleaved combs, \
         Skew = density in the lower 80% then the top band.",
    );
    let mut csv = String::from("workload,query,low,high\n");
    for kind in WorkloadKind::all_concrete() {
        let qs = WorkloadSpec::new(kind, cfg.n, cfg.queries, cfg.seed_for(kind.label())).generate();
        for (i, q) in qs.iter().enumerate() {
            // Thin the CSV to ~1000 points per workload.
            if qs.len() <= 1000 || i % (qs.len() / 1000).max(1) == 0 {
                csv.push_str(&format!("{},{},{},{}\n", kind.label(), i, q.low, q.high));
            }
        }
        out.push_str(&format!(
            "### {}\n\n```text\n{}```\n\n",
            kind.label(),
            ascii_panel(kind, cfg.n, cfg.queries, cfg.seed_for(kind.label()))
        ));
    }
    if let Some(dir) = &cfg.out_dir {
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join("fig07_patterns.csv"), csv);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Sequential panel must be a rising diagonal: the marked row
    /// strictly descends (domain position ascends) over the panel.
    #[test]
    fn sequential_panel_is_a_diagonal() {
        let panel = ascii_panel(WorkloadKind::Sequential, 100_000, 512, 7);
        let rows: Vec<&str> = panel.lines().collect();
        let col_mark = |c: usize| rows.iter().position(|r| r.as_bytes()[c] == b'#');
        let first = col_mark(0).expect("mark in first column");
        let last = col_mark(COLS - 1).expect("mark in last column");
        assert!(
            first > last,
            "diagonal should rise: col0 row {first}, col63 row {last}"
        );
    }

    /// ZoomIn starts wide (many rows marked) and ends narrow.
    #[test]
    fn zoomin_panel_narrows() {
        let panel = ascii_panel(WorkloadKind::ZoomIn, 100_000, 512, 7);
        let rows: Vec<&str> = panel.lines().collect();
        let marks_in_col = |c: usize| rows.iter().filter(|r| r.as_bytes()[c] == b'#').count();
        assert!(
            marks_in_col(0) > marks_in_col(COLS - 1),
            "wedge must close: {} -> {}",
            marks_in_col(0),
            marks_in_col(COLS - 1)
        );
    }

    /// Every concrete workload renders a non-empty panel.
    #[test]
    fn all_panels_render() {
        for kind in WorkloadKind::all_concrete() {
            let panel = ascii_panel(kind, 50_000, 256, 3);
            assert!(panel.contains('#'), "{kind:?} panel empty");
        }
    }
}
