//! Figure 19 (table) — selective stochastic cracking via per-piece
//! monitoring (ScrackMon) on the SkyServer workload.

use super::fig16;
use super::{fresh_data, heading};
use crate::report::{format_secs, Table};
use crate::runner::{run_engine, ExpConfig};
use scrack_core::{build_engine, EngineKind, Oracle};

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 19 — ScrackMon: stochastic crack once a piece's crack \
         counter reaches X (SkyServer)",
        "Performance degrades monotonically with the threshold; X=1 \
         (continuous) wins — 'there is no royal road to workload \
         robustness'.",
    );
    let queries = fig16::trace(cfg);
    out.push_str(&format!("Trace length: {} queries\n\n", queries.len()));
    let mut t = Table::new(&["X", "strategy", "cumulative time"]);
    // X=0 would be continuous; the paper's X=1 (Scrack) corresponds to
    // EveryX{1}; the monitored sweep uses the counter thresholds below.
    {
        let data = fresh_data(cfg);
        let oracle = cfg.verify.then(|| Oracle::new(&data));
        let mut engine = build_engine(
            EngineKind::EveryX { x: 1 },
            data,
            cfg.crack_config(),
            cfg.seed_for("fig19-scrack"),
        );
        let r = run_engine(engine.as_mut(), &queries, oracle.as_ref());
        t.row(vec![
            "1".into(),
            "Scrack".into(),
            format_secs(r.total_secs()),
        ]);
    }
    for x in [5u32, 10, 50, 100, 500] {
        let data = fresh_data(cfg);
        let oracle = cfg.verify.then(|| Oracle::new(&data));
        let kind = EngineKind::Monitor { threshold: x };
        let mut engine = build_engine(
            kind,
            data,
            cfg.crack_config(),
            cfg.seed_for(&format!("fig19-{x}")),
        );
        let r = run_engine(engine.as_mut(), &queries, oracle.as_ref());
        t.row(vec![
            x.to_string(),
            kind.label(),
            format_secs(r.total_secs()),
        ]);
    }
    out.push_str(&t.render());
    out
}
