//! Figure 8 (table) — DDC cumulative time vs. the `CRACK_AT` piece-size
//! threshold, on the sequential workload.

use super::{fresh_data, heading, workload};
use crate::report::{format_secs, Table};
use crate::runner::{run_engine, ExpConfig};
use scrack_core::{DdcEngine, Engine, Oracle};
use scrack_types::CacheProfile;
use scrack_workloads::WorkloadKind;

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 8 — varying the DDC piece-size threshold (Sequential)",
        "L1-sized thresholds (and below) perform best; L2 degrades; 3*L2 \
         degrades severely (larger uncracked pieces keep being rescanned).",
    );
    let cache = CacheProfile::default();
    let elem = std::mem::size_of::<u64>();
    let l1 = cache.l1_elems(elem);
    let l2 = cache.l2_elems(elem);
    let sweeps: [(&str, usize); 5] = [
        ("L1/4", l1 / 4),
        ("L1/2", l1 / 2),
        ("L1", l1),
        ("L2", l2),
        ("3L2", 3 * l2),
    ];
    let queries = workload(cfg, WorkloadKind::Sequential);
    let mut t = Table::new(&["X=CRACK_AT", "elements", "cumulative time"]);
    for (label, elems) in sweeps {
        let data = fresh_data(cfg);
        let oracle = cfg.verify.then(|| Oracle::new(&data));
        let crack_cfg = cfg.crack_config().with_crack_size(elems.max(1));
        let mut engine = DdcEngine::new(data, crack_cfg);
        let r = run_engine(
            &mut engine as &mut dyn Engine<u64>,
            &queries,
            oracle.as_ref(),
        );
        t.row(vec![
            label.to_string(),
            elems.to_string(),
            format_secs(r.total_secs()),
        ]);
    }
    out.push_str(&t.render());
    out
}
