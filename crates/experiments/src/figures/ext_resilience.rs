//! Extension — fault-hardened serving (the PR 7 resilience layer).
//!
//! The paper's thesis is robustness against adversarial *workloads*;
//! this section demonstrates the serving stack's robustness against
//! adversarial *conditions*. It drives the resilient
//! [`BatchScheduler`] path through the deterministic fault plans —
//! worker panic in the crack kernel, a poisoned shard, and admission
//! queue overload — and reports, per fault: the outcome accounting
//! (answered / shed / timed out), the fault signatures the run left
//! (isolated panics, quarantines, rebuilds), and an exactness check of
//! every answered query against a scan oracle. The full open-loop
//! arrival-rate sweep (latency percentiles vs offered load, recovery
//! ratios, JSON baseline `BENCH_7.json`) lives in the
//! `scrack_robustness` binary; this section is the quick in-harness
//! view.

use super::{fresh_data, heading, workload};
use crate::report::Table;
use crate::runner::ExpConfig;
use scrack_core::fault::is_injected_panic;
use scrack_core::FaultPlan;
use scrack_parallel::{
    AdmissionPolicy, BatchScheduler, ParallelStrategy, QueryOutcome, ServingConfig,
};
use scrack_types::QueryRange;
use scrack_workloads::WorkloadKind;

fn oracle(data: &[u64], q: QueryRange) -> (usize, u64) {
    data.iter()
        .filter(|k| q.contains(**k))
        .fold((0, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k)))
}

/// Runs the full stream through a resilient scheduler armed with `plan`;
/// returns (answered, shed, wrong, stats).
fn run_fault(
    cfg: &ExpConfig,
    data: &[u64],
    queries: &[QueryRange],
    plan: FaultPlan,
    serving: &ServingConfig,
) -> (usize, usize, usize, scrack_parallel::ResilienceStats) {
    let shards = cfg.threads.iter().copied().max().unwrap_or(2).max(2);
    let mut sched = BatchScheduler::new(
        data.to_vec(),
        shards,
        ParallelStrategy::Stochastic,
        cfg.crack_config().with_fault(plan),
        cfg.seed_for("ext-resilience"),
    );
    let (mut answered, mut shed, mut wrong) = (0usize, 0usize, 0usize);
    for chunk in queries.chunks(cfg.batch.max(1)) {
        let report = sched.execute_resilient(chunk, serving);
        assert_eq!(report.outcomes.len(), chunk.len(), "a query went missing");
        for (qi, outcome) in report.outcomes.iter().enumerate() {
            match outcome {
                QueryOutcome::Answered { count, key_sum, .. } => {
                    answered += 1;
                    if (*count, *key_sum) != oracle(data, chunk[qi]) {
                        wrong += 1;
                    }
                }
                QueryOutcome::Shed { .. } => shed += 1,
                QueryOutcome::TimedOut => {}
            }
        }
    }
    (answered, shed, wrong, sched.resilience_stats())
}

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Extension — fault-hardened serving (admission control + panic isolation)",
        "Every admitted query stays oracle-exact under every injected \
         fault (wrong = 0 on all rows); the panic and poison rows show \
         their quarantine/rebuild signatures; only the overload row \
         sheds, and every shed query is accounted, never dropped.",
    );
    let data = fresh_data(cfg);
    let queries = workload(cfg, WorkloadKind::Random);
    let serving = ServingConfig::bounded(
        (cfg.batch.max(1) / 2).max(4),
        AdmissionPolicy::Shed,
    )
    .with_max_retries(1);
    let trigger = 12;
    let window = (queries.len() / cfg.batch.max(1) / 3).max(1) as u32;
    let plans = [
        ("none", FaultPlan::disabled()),
        ("panic", FaultPlan::panic_in_kernel(trigger).on_target(0)),
        ("poison", FaultPlan::poison_shard(trigger).on_target(1)),
        (
            "overload",
            FaultPlan::queue_overload(2).with_repeat(window),
        ),
    ];
    // The injected panics are drills the executor catches; keep the
    // default hook from interleaving their backtraces with the report,
    // while real panics stay loud.
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let drill = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| is_injected_panic(s));
        if !drill {
            previous(info);
        }
    }));
    let mut table = Table::new(&[
        "fault", "answered", "shed", "wrong", "panics", "quarantines", "rebuilds",
    ]);
    for (fault, plan) in plans {
        let (answered, shed, wrong, stats) = run_fault(cfg, &data, &queries, plan, &serving);
        assert_eq!(wrong, 0, "{fault}: an admitted query returned a wrong answer");
        assert_eq!(
            answered + shed,
            queries.len(),
            "{fault}: accounting broken"
        );
        table.row(vec![
            fault.into(),
            answered.to_string(),
            shed.to_string(),
            wrong.to_string(),
            stats.panics_isolated.to_string(),
            stats.quarantines.to_string(),
            stats.rebuilds.to_string(),
        ]);
    }
    let _ = std::panic::take_hook(); // back to the default hook
    out.push_str(&table.render());
    out.push('\n');
    out
}
