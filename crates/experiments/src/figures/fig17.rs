//! Figure 17 (table) — every workload × {Crack, Scrack, FiftyFifty,
//! FlipCoin}, plus the Mixed rotation and SkyServer.

use super::fig16;
use super::{fresh_data, heading, workload};
use crate::report::{format_secs, Table};
use crate::runner::{run_engine, ExpConfig};
use scrack_core::{build_engine, EngineKind, Oracle};
use scrack_types::QueryRange;
use scrack_workloads::WorkloadKind;

fn cell(cfg: &ExpConfig, kind: EngineKind, queries: &[QueryRange], tag: &str) -> f64 {
    let data = fresh_data(cfg);
    let oracle = cfg.verify.then(|| Oracle::new(&data));
    let mut engine = build_engine(kind, data, cfg.crack_config(), cfg.seed_for(tag));
    run_engine(engine.as_mut(), queries, oracle.as_ref()).total_secs()
}

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 17 — cracking strategies across all workloads (cumulative \
         time for the full sequence)",
        "Scrack is robust everywhere (never catastrophically slow). Crack \
         fails by 2+ orders of magnitude on the non-random patterns \
         (ZoomOut, ZoomInAlt, SeqReverse, Sequential, SeqZoomOut, \
         ZoomOutAlt, SkewZoomOutAlt, Mixed, SkyServer) and wins only \
         marginally on Random/Skew/SeqRandom. FiftyFifty fails on the \
         *Alt patterns (deterministic alternation resonates with its \
         period); FlipCoin never fails but trails pure Scrack.",
    );
    let kinds = [
        EngineKind::Crack,
        EngineKind::EveryX { x: 1 }, // Scrack (continuous MDD1R)
        EngineKind::EveryX { x: 2 }, // FiftyFifty
        EngineKind::FlipCoin,
    ];
    let mut t = Table::new(&["Workload", "Crack", "Scrack", "FiftyFifty", "FlipCoin"]);
    let ordered = [
        WorkloadKind::Periodic,
        WorkloadKind::ZoomOut,
        WorkloadKind::ZoomIn,
        WorkloadKind::ZoomInAlt,
        WorkloadKind::Random,
        WorkloadKind::Skew,
        WorkloadKind::SeqReverse,
        WorkloadKind::SeqZoomIn,
        WorkloadKind::SeqRandom,
        WorkloadKind::Sequential,
        WorkloadKind::SeqZoomOut,
        WorkloadKind::ZoomOutAlt,
        WorkloadKind::SkewZoomOutAlt,
        WorkloadKind::Mixed,
    ];
    for wk in ordered {
        let queries = workload(cfg, wk);
        let mut row = vec![wk.label().to_string()];
        for kind in kinds {
            row.push(format_secs(cell(
                cfg,
                kind,
                &queries,
                &format!("fig17-{}-{}", wk.label(), kind.label()),
            )));
        }
        t.row(row);
    }
    // SkyServer row (16x the query budget, as in the paper).
    {
        let queries = fig16::trace(cfg);
        let mut row = vec![format!("SkyServer({}q)", queries.len())];
        for kind in kinds {
            row.push(format_secs(cell(
                cfg,
                kind,
                &queries,
                &format!("fig17-sky-{}", kind.label()),
            )));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out
}
