//! Figure 18 (table) — selective stochastic cracking with varying period
//! on the SkyServer workload.

use super::fig16;
use super::{fresh_data, heading};
use crate::report::{format_secs, Table};
use crate::runner::{run_engine, ExpConfig};
use scrack_core::{build_engine, EngineKind, Oracle};

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Fig. 18 — stochastic crack every X queries, original cracking \
         otherwise (SkyServer)",
        "Monotone degradation as X grows: X=1 (continuous stochastic \
         cracking) is best; X=32 is an order of magnitude worse.",
    );
    let queries = fig16::trace(cfg);
    out.push_str(&format!("Trace length: {} queries\n\n", queries.len()));
    let mut t = Table::new(&["X", "strategy", "cumulative time"]);
    for x in [1u32, 2, 4, 8, 16, 32] {
        let data = fresh_data(cfg);
        let oracle = cfg.verify.then(|| Oracle::new(&data));
        let kind = EngineKind::EveryX { x };
        let mut engine = build_engine(
            kind,
            data,
            cfg.crack_config(),
            cfg.seed_for(&format!("fig18-{x}")),
        );
        let r = run_engine(engine.as_mut(), &queries, oracle.as_ref());
        t.row(vec![
            x.to_string(),
            kind.label(),
            format_secs(r.total_secs()),
        ]);
    }
    out.push_str(&t.render());
    out
}
