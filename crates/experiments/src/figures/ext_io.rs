//! Extension — disk-based cracking I/O (§6's disk-processing question).
//!
//! The in-memory figures measure tuples touched; on disk the currency is
//! page transfers. This experiment runs the external engines over paged
//! storage at several buffer-pool sizes and reports reads/writes,
//! quantifying "how much reorganization we can afford per query without
//! increasing I/O costs prohibitively" (§6).

use super::{fresh_data, heading, workload};
use crate::report::Table;
use crate::runner::ExpConfig;
use scrack_external::{build_paged_engine, PagedEngineKind, PoolConfig};
use scrack_workloads::WorkloadKind;

const PAGE_ELEMS: usize = 4096;

/// Runs the experiment and renders the report section.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = heading(
        cfg,
        "Extension — page I/O of external cracking (pool = 10% of data)",
        "Scan reads pages*Q and never writes; Sort pays ~2 passes per merge \
         level once; Crack's reorganization writes decay on Random but its \
         re-reads explode on Sequential; external MDD1R stays near Sort's \
         totals on both — the robustness result carries to disk.",
    );
    let data = fresh_data(cfg);
    let pages = (cfg.n as usize).div_ceil(PAGE_ELEMS) as u64;
    let mut table = Table::new(&["workload", "engine", "reads", "writes", "total", "pages/query"]);
    for wk in [WorkloadKind::Random, WorkloadKind::Sequential] {
        let queries = workload(cfg, wk);
        for kind in PagedEngineKind::all_with_progressive() {
            let config = PoolConfig::with_memory_fraction(cfg.n as usize, 0.10, PAGE_ELEMS);
            let mut engine = build_paged_engine(kind, &data, config, cfg.seed_for("extio"));
            for q in &queries {
                std::hint::black_box(engine.select(*q).len());
            }
            let io = engine.io();
            table.row(vec![
                format!("{wk:?}"),
                kind.label(),
                io.reads.to_string(),
                io.writes.to_string(),
                io.total_io().to_string(),
                format!("{:.2}", io.total_io() as f64 / queries.len() as f64),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(&format!("\n(column occupies {pages} pages of {PAGE_ELEMS} keys)\n"));
    out
}
