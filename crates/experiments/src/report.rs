//! Plain-text reporting: markdown tables and CSV series.

use crate::runner::{ExpConfig, RunResult};
use std::fmt::Write as _;
use std::path::Path;

/// Log-spaced checkpoints `1, 2, 4, …` up to and including `q`.
///
/// The paper's cumulative plots use logarithmic axes; sampling the curves
/// at powers of two reproduces them in tabular form.
pub fn log_checkpoints(q: usize) -> Vec<usize> {
    let mut pts = Vec::new();
    let mut k = 1usize;
    while k < q {
        pts.push(k);
        k *= 2;
    }
    pts.push(q);
    pts
}

/// Human formatting for seconds across nine orders of magnitude.
pub fn format_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2}us", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

/// A minimal markdown table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Renders as markdown with padded columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            out.push('|');
            for (i, w) in widths.iter().enumerate().take(cols) {
                let _ = write!(out, " {:w$} |", cells.get(i).map_or("", |s| s), w = w);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<w$}|", "", w = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// The standard "cumulative response time over the query sequence" table
/// (one row per checkpoint, one column per engine) used by most figures.
pub fn cumulative_table(results: &[&RunResult], queries: usize) -> String {
    let mut headers: Vec<String> = vec!["queries".into()];
    headers.extend(results.iter().map(|r| r.name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for k in log_checkpoints(queries) {
        let mut row = vec![k.to_string()];
        row.extend(results.iter().map(|r| format_secs(r.cumulative_secs_at(k))));
        t.row(row);
    }
    t.render()
}

/// Writes per-query series (`query_index, cumulative_seconds,
/// query_seconds, touched`) as CSV under the config's output directory.
pub fn write_series(cfg: &ExpConfig, file: &str, results: &[&RunResult]) {
    let Some(dir) = &cfg.out_dir else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path: &Path = dir.as_ref();
    let mut body = String::from("engine,query,cumulative_s,query_s,touched\n");
    for r in results {
        let mut cum = 0.0f64;
        for i in 0..r.per_query_ns.len() {
            cum += r.per_query_ns[i] as f64 * 1e-9;
            let _ = writeln!(
                body,
                "{},{},{:.9},{:.9},{}",
                r.name,
                i + 1,
                cum,
                r.per_query_ns[i] as f64 * 1e-9,
                r.per_query_touched[i]
            );
        }
    }
    let _ = std::fs::write(path.join(file), body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoints_are_log_spaced_and_end_at_q() {
        assert_eq!(log_checkpoints(10), vec![1, 2, 4, 8, 10]);
        assert_eq!(log_checkpoints(1), vec![1]);
        assert_eq!(log_checkpoints(16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_secs(123.4), "123s");
        assert_eq!(format_secs(1.5), "1.50s");
        assert_eq!(format_secs(0.0025), "2.50ms");
        assert_eq!(format_secs(2.5e-6), "2.50us");
        assert_eq!(format_secs(5e-9), "5ns");
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| a | bbbb |"));
        assert!(s.contains("|---|------|"));
        assert!(s.contains("| 1 | 2    |"));
    }
}
