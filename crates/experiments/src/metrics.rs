//! The adaptive-indexing benchmark metrics of the paper's reference \[10\]
//! (Graefe, Idreos, Kuno, Manegold: *Benchmarking adaptive indexing*,
//! TPCTC 2010).
//!
//! §2 adopts that benchmark's two requirements: "(a) lightweight
//! initialization, i.e., low cost for the first few queries that trigger
//! adaptation; and (b) as fast as possible convergence to the desired
//! performance. Initialization cost is measured against that of a full
//! scan, while desired performance is measured against that of a full
//! index." This module turns those sentences into computable quantities
//! over per-query cost series, so every engine's position between the
//! Scan and Sort goalposts can be reported as one row.

use crate::runner::RunResult;

/// One engine's scorecard against the Scan and Sort goalposts.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveMetrics {
    /// Engine display name.
    pub name: String,
    /// First-query cost relative to Scan's steady per-query cost —
    /// requirement (a); ≲ 1 means the triggering query was no worse than
    /// not indexing at all.
    pub first_query_vs_scan: f64,
    /// Cumulative cost of the initialization window (first `window`
    /// queries) relative to Scan's over the same window.
    pub init_window_vs_scan: f64,
    /// First query index (0-based) from which the per-query cost stays
    /// within `alpha ×` the full index's steady per-query cost for a full
    /// window — requirement (b). `None` if never.
    pub convergence_query: Option<usize>,
    /// First query after which the engine's cumulative cost stays below
    /// Scan's — when adaptation has paid for itself against not indexing.
    pub payoff_vs_scan: Option<usize>,
    /// First query after which the engine's cumulative cost stays below
    /// Sort's — when it has beaten up-front full indexing outright
    /// (`None` for engines Sort eventually overtakes).
    pub payoff_vs_sort: Option<usize>,
    /// Total cumulative cost relative to Sort's.
    pub total_vs_sort: f64,
}

/// Computes the scorecard. `cost_of` selects the per-query series
/// (wall-clock or touched tuples — the tests use the deterministic
/// counters, reports use time, matching the repository convention).
///
/// `alpha` is the convergence slack (how close to full-index performance
/// counts as "converged"; \[10\] uses small constants) and `window` the
/// sustain requirement for both convergence and payoff points, so a
/// single lucky query cannot claim either.
pub fn analyze(
    engine: &RunResult,
    scan: &RunResult,
    sort: &RunResult,
    cost_of: impl Fn(&RunResult) -> Vec<f64>,
    alpha: f64,
    window: usize,
) -> AdaptiveMetrics {
    let e = cost_of(engine);
    let s = cost_of(scan);
    let f = cost_of(sort);
    assert!(!e.is_empty() && e.len() == s.len() && s.len() == f.len(), "aligned series");
    assert!(alpha >= 1.0, "convergence slack must be >= 1");
    let window = window.max(1).min(e.len());

    // Scan's steady per-query cost: the median, robust to timer noise.
    let scan_steady = median(&s);
    // The full index's steady cost: median of Sort's post-build queries
    // (query 0 carries the sort itself).
    let sort_steady = median(&f[1.min(f.len() - 1)..]);

    let first_query_vs_scan = ratio(e[0], scan_steady);
    let init_window_vs_scan = ratio(
        e[..window].iter().sum::<f64>(),
        s[..window].iter().sum::<f64>(),
    );

    let converged = |i: usize| e[i..(i + window).min(e.len())]
        .iter()
        .all(|c| *c <= alpha * sort_steady.max(f64::EPSILON));
    let convergence_query = (0..e.len()).find(|i| *i + window <= e.len() && converged(*i));

    let cum = |xs: &[f64]| -> Vec<f64> {
        xs.iter()
            .scan(0.0, |acc, x| {
                *acc += x;
                Some(*acc)
            })
            .collect()
    };
    let (ce, cs, cf) = (cum(&e), cum(&s), cum(&f));
    let sustained_below = |a: &[f64], b: &[f64]| {
        (0..a.len()).find(|&i| (i..a.len()).all(|j| a[j] < b[j]))
    };
    let payoff_vs_scan = sustained_below(&ce, &cs);
    let payoff_vs_sort = sustained_below(&ce, &cf);
    let total_vs_sort = ratio(*ce.last().expect("non-empty"), *cf.last().expect("non-empty"));

    AdaptiveMetrics {
        name: engine.name.clone(),
        first_query_vs_scan,
        init_window_vs_scan,
        convergence_query,
        payoff_vs_scan,
        payoff_vs_sort,
        total_vs_sort,
    }
}

/// The wall-clock cost selector.
pub fn by_time(r: &RunResult) -> Vec<f64> {
    r.per_query_ns.iter().map(|ns| *ns as f64).collect()
}

/// The deterministic tuples-touched cost selector.
pub fn by_touched(r: &RunResult) -> Vec<f64> {
    r.per_query_touched.iter().map(|t| *t as f64).collect()
}

fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_types::Stats;

    fn run(name: &str, touched: Vec<u64>) -> RunResult {
        RunResult {
            name: name.into(),
            per_query_ns: touched.clone(),
            per_query_touched: touched,
            final_stats: Stats::default(),
            total_result_tuples: 0,
        }
    }

    /// Synthetic goalposts: Scan flat at 100, Sort pays 1000 then 1.
    fn goalposts(q: usize) -> (RunResult, RunResult) {
        let scan = run("Scan", vec![100; q]);
        let mut sort_series = vec![1u64; q];
        sort_series[0] = 1000;
        (scan, run("Sort", sort_series))
    }

    #[test]
    fn ideal_cracker_scores_well() {
        // Cost halves each query: 100, 50, 25, ... — converges fast.
        let q = 20;
        let series: Vec<u64> = (0..q).map(|i| (100u64 >> i).max(1)).collect();
        let (scan, sort) = goalposts(q);
        let m = analyze(&run("Crack", series), &scan, &sort, by_touched, 2.0, 3);
        assert!((m.first_query_vs_scan - 1.0).abs() < 1e-9, "init ≈ scan");
        assert_eq!(m.convergence_query, Some(6), "100>>6 = 1 <= 2·1");
        // Query 0 ties with Scan (100 = 100); strictly below from query 1.
        assert_eq!(m.payoff_vs_scan, Some(1), "cheaper than scanning from q1");
        assert!(m.payoff_vs_sort.is_some(), "beats the up-front sort");
        assert!(m.total_vs_sort < 1.0);
    }

    #[test]
    fn pathological_engine_never_converges() {
        // Stuck at scan cost forever (original cracking on Sequential).
        let q = 50;
        let series = vec![100u64; q];
        let (scan, sort) = goalposts(q);
        let m = analyze(&run("Stuck", series), &scan, &sort, by_touched, 2.0, 3);
        assert_eq!(m.convergence_query, None);
        assert_eq!(m.payoff_vs_scan, None, "never sustainedly below scan");
        assert_eq!(m.payoff_vs_sort, None, "sort overtakes at query 10");
        assert!(m.total_vs_sort > 1.0);
    }

    #[test]
    fn heavy_initializer_flagged_by_first_query_ratio() {
        // Pays 5× scan up front (a DDC-like profile), then is instant.
        let q = 30;
        let mut series = vec![1u64; q];
        series[0] = 500;
        let (scan, sort) = goalposts(q);
        let m = analyze(&run("Heavy", series), &scan, &sort, by_touched, 2.0, 3);
        assert!((m.first_query_vs_scan - 5.0).abs() < 1e-9);
        assert_eq!(m.convergence_query, Some(1));
        // Cumulative after q0: 500 vs scan 100 — pays off once the scan
        // series accumulates past it.
        assert_eq!(m.payoff_vs_scan, Some(5));
    }

    #[test]
    fn convergence_requires_a_sustained_window() {
        // One lucky cheap query amid expensive ones must not count.
        let q = 12;
        let mut series = vec![100u64; q];
        series[3] = 1; // lucky spike down
        series[9] = 1;
        series[10] = 1;
        series[11] = 1;
        let (scan, sort) = goalposts(q);
        let m = analyze(&run("Lucky", series), &scan, &sort, by_touched, 2.0, 3);
        assert_eq!(m.convergence_query, Some(9), "only the sustained tail counts");
    }

    #[test]
    fn zero_cost_ratios_are_defined() {
        let q = 5;
        let zero = run("Zero", vec![0; q]);
        let (scan, sort) = goalposts(q);
        let m = analyze(&zero, &scan, &sort, by_touched, 1.0, 2);
        assert_eq!(m.first_query_vs_scan, 0.0);
        assert!(m.total_vs_sort < 1.0);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_series_rejected() {
        let (scan, sort) = goalposts(5);
        analyze(&run("Bad", vec![1; 4]), &scan, &sort, by_touched, 2.0, 2);
    }

    mod prop_based {
        use super::*;
        use proptest::prelude::*;

        /// Brute-force re-check of the definitions on arbitrary series.
        fn brute(
            e: &[u64],
            scan: &[u64],
            sort: &[u64],
            alpha: f64,
            window: usize,
        ) -> (Option<usize>, Option<usize>) {
            let mut sorted_tail: Vec<u64> = sort[1.min(sort.len() - 1)..].to_vec();
            sorted_tail.sort_unstable();
            let steady = sorted_tail[sorted_tail.len() / 2] as f64;
            let window = window.max(1).min(e.len());
            let conv = (0..e.len()).find(|&i| {
                i + window <= e.len()
                    && e[i..i + window]
                        .iter()
                        .all(|c| *c as f64 <= alpha * steady.max(f64::EPSILON))
            });
            let cum = |xs: &[u64]| -> Vec<u64> {
                xs.iter()
                    .scan(0u64, |a, x| {
                        *a += x;
                        Some(*a)
                    })
                    .collect()
            };
            let (ce, cs) = (cum(e), cum(scan));
            let payoff =
                (0..e.len()).find(|&i| (i..e.len()).all(|j| (ce[j] as f64) < cs[j] as f64));
            (conv, payoff)
        }

        proptest! {
            #[test]
            fn analyze_matches_brute_force(
                e in prop::collection::vec(0u64..1000, 2..60),
                scan_cost in 1u64..1000,
                sort_first in 1u64..5000,
                sort_steady in 0u64..50,
                alpha in 1.0f64..8.0,
                window in 1usize..6,
            ) {
                let q = e.len();
                let scan_series = vec![scan_cost; q];
                let mut sort_series = vec![sort_steady; q];
                sort_series[0] = sort_first;
                let engine = run("E", e.clone());
                let scan = run("Scan", scan_series.clone());
                let sort = run("Sort", sort_series.clone());
                let m = analyze(&engine, &scan, &sort, by_touched, alpha, window);
                let (conv, payoff) = brute(&e, &scan_series, &sort_series, alpha, window);
                prop_assert_eq!(m.convergence_query, conv);
                prop_assert_eq!(m.payoff_vs_scan, payoff);
                // Ratio sanity.
                prop_assert!(m.first_query_vs_scan >= 0.0);
                prop_assert!(m.total_vs_sort >= 0.0);
            }
        }
    }
}
