//! CLI for the experiment harness.
//!
//! ```text
//! experiments [FIGURES...] [--n N] [--queries Q] [--seed S]
//!             [--out DIR] [--verify] [--quick]
//!             [--kernel branchy|branchless|auto] [--index avl|flat|radix]
//!             [--update per-element|batched]
//!             [--threads N,N,...] [--batch B]
//!
//! FIGURES: fig2 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16
//!          fig17 fig18 fig19 fig20 | ext-parallel ext-resilience ... |
//!          all (default: all)
//! --quick: N=10^5, Q=10^3 — smoke-test scale
//! --threads/--batch: the ext-parallel concurrency sweep's thread counts
//!                    and BatchScheduler batch size
//! ```

use scrack_experiments::figures;
use scrack_experiments::ExpConfig;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::default();
    let mut figures_wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                cfg.n = args[i].parse().expect("--n takes an integer");
            }
            "--queries" | "-q" => {
                i += 1;
                cfg.queries = args[i].parse().expect("--queries takes an integer");
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                cfg.out_dir = Some(args[i].clone().into());
            }
            "--verify" => cfg.verify = true,
            "--quick" => {
                cfg.n = 100_000;
                cfg.queries = 1_000;
            }
            "--kernel" => {
                i += 1;
                cfg.kernel = scrack_core::KernelPolicy::parse(&args[i]).unwrap_or_else(|| {
                    eprintln!("--kernel takes branchy|branchless|auto, got {}", args[i]);
                    std::process::exit(2);
                });
            }
            "--index" => {
                i += 1;
                let value = args.get(i).map(String::as_str).unwrap_or_else(|| {
                    eprintln!("--index requires a value (avl|flat|radix)");
                    std::process::exit(2);
                });
                cfg.index = scrack_core::IndexPolicy::parse(value).unwrap_or_else(|| {
                    eprintln!("--index takes avl|flat|radix, got {value}");
                    std::process::exit(2);
                });
            }
            "--update" => {
                i += 1;
                let value = args.get(i).map(String::as_str).unwrap_or_else(|| {
                    eprintln!("--update requires a value (per-element|batched)");
                    std::process::exit(2);
                });
                cfg.update = scrack_core::UpdatePolicy::parse(value).unwrap_or_else(|| {
                    eprintln!("--update takes per-element|batched, got {value}");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                cfg.threads = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--threads takes integers"))
                    .collect();
                assert!(!cfg.threads.is_empty(), "--threads needs at least one count");
            }
            "--batch" => {
                i += 1;
                cfg.batch = args[i].parse().expect("--batch takes an integer");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [fig2|fig8|...|fig20|ext-updates|\
                     ext-io|ext-chooser|ext-parallel|ext-resilience|all]... \
                     [--n N] [--queries Q] [--seed S] [--out DIR] \
                     [--verify] [--quick] [--kernel branchy|branchless|auto] \
                     [--index avl|flat|radix] [--update per-element|batched] \
                     [--threads N,N,...] [--batch B]"
                );
                return;
            }
            other if other.starts_with("fig") || other.starts_with("ext-") || other == "all" => {
                figures_wanted.push(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if figures_wanted.is_empty() || figures_wanted.iter().any(|f| f == "all") {
        figures_wanted = [
            "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
            "fig16",
            "fig17", "fig18", "fig19", "fig20", "ext-updates", "ext-io", "ext-chooser",
            "ext-metrics", "ext-parallel", "ext-resilience",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let _ = writeln!(
        lock,
        "# Stochastic Database Cracking — experiment run\n\n\
         Reproduction of Halim et al., VLDB 2012. Scale: N={}, Q={}, \
         seed={}, verify={}, kernel={}, index={}, update={}.\n",
        cfg.n, cfg.queries, cfg.seed, cfg.verify, cfg.kernel, cfg.index, cfg.update
    );
    for fig in &figures_wanted {
        let t0 = std::time::Instant::now();
        let section = match fig.as_str() {
            "fig2" => figures::fig02::run(&cfg),
            "fig7" => figures::fig07::run(&cfg),
            "fig8" => figures::fig08::run(&cfg),
            "fig9" => figures::fig09::run(&cfg),
            "fig10" => figures::fig10::run(&cfg),
            "fig11" => figures::fig11::run(&cfg),
            "fig12" => figures::fig12::run(&cfg),
            "fig13" => figures::fig13::run(&cfg),
            "fig14" => figures::fig14::run(&cfg),
            "fig15" => figures::fig15::run(&cfg),
            "fig16" => figures::fig16::run(&cfg),
            "fig17" => figures::fig17::run(&cfg),
            "fig18" => figures::fig18::run(&cfg),
            "fig19" => figures::fig19::run(&cfg),
            "fig20" => figures::fig20::run(&cfg),
            "ext-updates" => figures::ext_updates::run(&cfg),
            "ext-io" => figures::ext_io::run(&cfg),
            "ext-chooser" => figures::ext_chooser::run(&cfg),
            "ext-metrics" => figures::ext_metrics::run(&cfg),
            "ext-parallel" => figures::ext_parallel::run(&cfg),
            "ext-resilience" => figures::ext_resilience::run(&cfg),
            other => {
                eprintln!("unknown figure: {other}");
                continue;
            }
        };
        let _ = writeln!(lock, "{section}");
        let _ = writeln!(
            lock,
            "_({fig} experiment wall-clock: {:.1}s)_\n",
            t0.elapsed().as_secs_f64()
        );
    }
}
