//! Experiment harness regenerating every table and figure of *Stochastic
//! Database Cracking* (Halim et al., VLDB 2012).
//!
//! Each `figXX` module reproduces one figure or table of §5:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`figures::fig02`] | Fig. 2 — basic cracking performance (+ 2e tuples touched) |
//! | [`figures::fig08`] | Fig. 8 — DDC piece-size threshold sweep |
//! | [`figures::fig09`] | Fig. 9 — sequential workload: DDC/DDR, DD1C/DD1R, progressive |
//! | [`figures::fig10`] | Fig. 10 — random workload |
//! | [`figures::fig11`] | Fig. 11 — selectivity sweep |
//! | [`figures::fig12`] | Fig. 12 — naive random-injection approaches |
//! | [`figures::fig13`] | Fig. 13 — periodic / zoom workloads |
//! | [`figures::fig14`] | Fig. 14 — adaptive indexing hybrids |
//! | [`figures::fig15`] | Fig. 15 — updates |
//! | [`figures::fig16`] | Fig. 16 — SkyServer workload |
//! | [`figures::fig17`] | Fig. 17 — all workloads × selective variants |
//! | [`figures::fig18`] | Fig. 18 — selective period sweep (SkyServer) |
//! | [`figures::fig19`] | Fig. 19 — monitored selective sweep (SkyServer) |
//! | [`figures::fig20`] | Fig. 20 — initialization vs. total cost summary |
//!
//! Experiments run at a configurable scale ([`ExpConfig`]); the paper's
//! scale is `N = 10^8`, `Q = 10^4`, which reproduces on a large machine
//! via `--n 100000000`. Shapes (orderings, convergence, crossovers) are
//! scale-invariant; EXPERIMENTS.md records paper-vs-measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod metrics;
mod report;
mod runner;

pub use metrics::{analyze, AdaptiveMetrics};
pub use report::{format_secs, log_checkpoints, Table};
pub use runner::{run_engine, ExpConfig, RunResult};
