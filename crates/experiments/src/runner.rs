//! Timed query-sequence execution.

use scrack_core::{CrackConfig, Engine, IndexPolicy, KernelPolicy, Oracle, UpdatePolicy};
use scrack_types::{Element, QueryRange, Stats};
use std::path::PathBuf;
use std::time::Instant;

/// Scale and output settings shared by all experiments.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Column size / key domain `N` (paper: 10^8).
    pub n: u64,
    /// Queries per run `Q` (paper: 10^4; 1.6×10^5 for SkyServer).
    pub queries: usize,
    /// Base RNG seed; every run derives its own stream from it.
    pub seed: u64,
    /// Directory for CSV series output (created on demand); `None`
    /// disables file output.
    pub out_dir: Option<PathBuf>,
    /// Validate every query result against the oracle (adds overhead to
    /// the *reported* times of view-based engines; off for timing runs).
    pub verify: bool,
    /// Reorganization-kernel implementation the in-memory engines run
    /// (`--kernel branchy|branchless|auto`). Results are identical under
    /// every policy; per-query wall-clock differs, so figures can be
    /// regenerated per kernel and compared.
    pub kernel: KernelPolicy,
    /// Cracker-index representation the engines navigate
    /// (`--index avl|flat|radix`). Like the kernel policy, a pure
    /// wall-clock knob: results are bit-identical under all three.
    pub index: IndexPolicy,
    /// How the update experiments merge pending updates
    /// (`--update per-element|batched`). Answers are bit-identical under
    /// both; per-query wall-clock differs (the merge-ripple's point).
    pub update: UpdatePolicy,
    /// Thread counts the concurrency experiment sweeps (`--threads`).
    pub threads: Vec<usize>,
    /// Queries per `BatchScheduler` batch in the concurrency experiment
    /// (`--batch`).
    pub batch: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            n: 1_000_000,
            queries: 10_000,
            seed: 20120827, // the paper's presentation date at VLDB
            out_dir: None,
            verify: false,
            kernel: KernelPolicy::default(),
            index: IndexPolicy::default(),
            update: UpdatePolicy::default(),
            threads: vec![1, 2, 4],
            batch: 256,
        }
    }
}

impl ExpConfig {
    /// The engine configuration every figure builds on: defaults plus
    /// this run's kernel and index policies. Figure-specific overrides
    /// (Fig. 8's crack-size sweep, …) chain on top.
    pub fn crack_config(&self) -> CrackConfig {
        CrackConfig::default()
            .with_kernel(self.kernel)
            .with_index(self.index)
            .with_update(self.update)
    }

    /// A derived seed for a named sub-experiment, so runs are independent
    /// but reproducible.
    pub fn seed_for(&self, tag: &str) -> u64 {
        let mut h = self.seed ^ 0x9E3779B97F4A7C15;
        for b in tag.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001B3);
        }
        h
    }
}

/// Per-query measurements of one engine over one query sequence.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Engine display name.
    pub name: String,
    /// Wall-clock nanoseconds per query.
    pub per_query_ns: Vec<u64>,
    /// Tuples touched per query (Fig. 2e's metric).
    pub per_query_touched: Vec<u64>,
    /// Final cumulative engine counters.
    pub final_stats: Stats,
    /// Total qualifying tuples returned (a cheap anti-DCE checksum).
    pub total_result_tuples: u64,
}

impl RunResult {
    /// Cumulative wall-clock seconds after the first `k` queries.
    pub fn cumulative_secs_at(&self, k: usize) -> f64 {
        let k = k.min(self.per_query_ns.len());
        self.per_query_ns[..k].iter().sum::<u64>() as f64 * 1e-9
    }

    /// Total wall-clock seconds.
    pub fn total_secs(&self) -> f64 {
        self.cumulative_secs_at(self.per_query_ns.len())
    }

    /// Wall-clock seconds of query `i` (0-based).
    pub fn query_secs(&self, i: usize) -> f64 {
        self.per_query_ns[i] as f64 * 1e-9
    }
}

/// Runs `engine` over `queries`, timing each select.
///
/// When `oracle` is supplied, every result is validated (count + key
/// checksum); validation time is excluded from the per-query clock but
/// the checksum resolution does warm caches, so verified runs are for
/// correctness, not for reporting.
pub fn run_engine<E: Element>(
    engine: &mut dyn Engine<E>,
    queries: &[QueryRange],
    oracle: Option<&Oracle>,
) -> RunResult {
    let mut per_query_ns = Vec::with_capacity(queries.len());
    let mut per_query_touched = Vec::with_capacity(queries.len());
    let mut total_result_tuples = 0u64;
    let mut prev = engine.stats();
    for (i, q) in queries.iter().enumerate() {
        let t0 = Instant::now();
        let out = engine.select(*q);
        let dt = t0.elapsed().as_nanos() as u64;
        // Consuming the result length models handing the view to the next
        // operator; black_box stops the optimizer from deleting the work.
        total_result_tuples += std::hint::black_box(out.len()) as u64;
        let now = engine.stats();
        per_query_ns.push(dt);
        per_query_touched.push(now.since(&prev).touched);
        prev = now;
        if let Some(oracle) = oracle {
            assert_eq!(
                out.len(),
                oracle.count(*q),
                "{}: query {i} ({q}) returned wrong count",
                engine.name()
            );
            assert_eq!(
                out.key_checksum(engine.data()),
                oracle.checksum(*q),
                "{}: query {i} ({q}) returned wrong keys",
                engine.name()
            );
        }
    }
    RunResult {
        name: engine.name(),
        per_query_ns,
        per_query_touched,
        final_stats: engine.stats(),
        total_result_tuples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_core::{build_engine, CrackConfig, EngineKind};

    #[test]
    fn run_engine_records_per_query_series_and_verifies() {
        let data: Vec<u64> = (0..1000).map(|i| (i * 7) % 1000).collect();
        let oracle = Oracle::new(&data);
        let mut engine = build_engine(EngineKind::Crack, data, CrackConfig::default(), 1);
        let queries: Vec<QueryRange> = (0..20u64)
            .map(|i| QueryRange::new(i * 40, i * 40 + 25))
            .collect();
        let r = run_engine(engine.as_mut(), &queries, Some(&oracle));
        assert_eq!(r.per_query_ns.len(), 20);
        assert_eq!(r.per_query_touched.len(), 20);
        assert_eq!(r.name, "Crack");
        assert_eq!(r.total_result_tuples, 20 * 25);
        assert_eq!(r.per_query_touched[0], 1000, "first query scans the column");
        assert!(r.total_secs() >= r.cumulative_secs_at(1));
        assert!(
            r.cumulative_secs_at(50) == r.total_secs(),
            "clamped past end"
        );
        assert_eq!(r.final_stats.queries, 20);
    }

    #[test]
    fn seed_for_is_stable_and_tag_sensitive() {
        let cfg = ExpConfig::default();
        assert_eq!(cfg.seed_for("x"), cfg.seed_for("x"));
        assert_ne!(cfg.seed_for("x"), cfg.seed_for("y"));
    }
}
