//! A cache-conscious flat cracker index: sorted parallel arrays with an
//! insert-absorbing delta buffer.
//!
//! The AVL representation ([`crate::AvlTree`]) navigates by pointer
//! chasing: every `predecessor/successor` walk hops `O(log n)` nodes
//! scattered across the arena, each hop a potential cache miss. Once
//! cracking converges, that navigation — not data movement — bounds
//! per-query latency (Halim et al. §3's cost analysis; Alvarez et al.,
//! DaMoN 2014). The standard fix is a **flat piece directory**: crack
//! keys in one contiguous sorted array, positions in a parallel array,
//! and a lower-bound search over the dense keys. A lookup then touches a
//! handful of cache lines in one small array instead of a pointer chain.
//!
//! Two measured design decisions, both pinned by `BENCH_4.json`:
//!
//! * **Search variant.** The lower-bound search runs through
//!   `partition_point` (the classic branchy halving). The predicated
//!   ("branch-free", conditional-move) variant was measured 4–5× slower
//!   here: its loads form a serial dependency chain, while the branchy
//!   search speculates — the CPU issues the probable next load before
//!   the compare resolves, which at binary-search branch entropy still
//!   wins decisively on out-of-order cores ([`count_le`] keeps both; the
//!   predicated twin survives as [`count_le_predicated`] for A/B runs).
//! * **Delta buffer.** A plain sorted array pays an `O(n)` tail
//!   `memmove` per insert — at the ~20k cracks a 10k-query sequence
//!   creates, that is ~200 KB per crack and dominates random-workload
//!   latency. Inserts therefore land in a small sorted **delta** (at
//!   most [`DELTA_CAP`] entries, so the shift stays within a few KB) and
//!   bulk-merge into the main arrays when the delta fills — one linear
//!   backward merge amortized over [`DELTA_CAP`] inserts. Lookups search
//!   main + delta (both contiguous, the delta L1-resident) and combine
//!   neighbors.
//!
//! Layout:
//!
//! ```text
//! main   keys  [ 50 |  80 | 120 | … ]   sorted, contiguous — the big search array
//!        pos   [ 48 |  75 | 110 | … ]   parallel crack positions
//!        slots [  2 |  0  |  1  | … ]   parallel handles into the arena
//! delta  keys  [ 64 | 97 ]              sorted, ≤ DELTA_CAP, absorbs inserts
//!        pos/slots parallel             (merged into main when full)
//! arena  [ {80,M} {120,M} {50,M} {64,M} {97,M} ]   stable per-crack metadata
//! ```
//!
//! Handles ([`NodeId`]) index the **arena**, whose slots never move while
//! the entry lives — the same stability contract the AVL arena gives,
//! which the Ripple update path and the selective engines' piece-meta
//! access rely on. A handle resolves back to its sorted location by
//! re-searching its immutable key (`O(log n)`), which keeps inserts and
//! merges free of back-pointer fixups.

use crate::avl::NodeId;

/// Maximum delta-buffer entries before a bulk merge into the main
/// arrays. Small enough that the per-insert shift stays a few cache
/// lines; large enough to amortize the `O(n)` merge well below the cost
/// of the reorganization work that accompanies a crack.
pub const DELTA_CAP: usize = 256;

/// Count of elements `<= probe` in the sorted slice `a` (the rank the
/// piece lookup needs). Runs through `partition_point` — measured faster
/// than the predicated variant on out-of-order cores (see module docs).
#[inline]
pub fn count_le(a: &[u64], probe: u64) -> usize {
    a.partition_point(|k| *k <= probe)
}

/// The predicated (conditional-move) twin of [`count_le`]: the classic
/// multiplicative branch-free binary search. Kept for differential
/// testing and A/B measurement; the hot paths use [`count_le`].
#[inline]
pub fn count_le_predicated(a: &[u64], probe: u64) -> usize {
    let mut off = 0usize;
    let mut n = a.len();
    while n > 1 {
        let half = n / 2;
        off += usize::from(a[off + half - 1] <= probe) * half;
        n -= half;
    }
    off + usize::from(n == 1 && a[off] <= probe)
}

#[derive(Debug, Clone)]
struct Entry<M> {
    key: u64,
    meta: M,
}

/// Where a key lives inside the two-level structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    Main(usize),
    Delta(usize),
}

/// A flat cracker index: crack keys, positions and metadata handles in
/// sorted parallel arrays plus a small insert-absorbing delta (see the
/// module docs for layout and costs).
///
/// API-compatible with [`crate::AvlTree`] where the two overlap, so
/// [`crate::CrackerIndex`] can dispatch between the representations and
/// property tests can pin them against each other entry for entry.
#[derive(Debug, Clone)]
pub struct FlatIndex<M> {
    /// Main crack keys, strictly increasing; the big search array.
    keys: Vec<u64>,
    /// `pos[r]` is the crack position of `keys[r]`.
    pos: Vec<usize>,
    /// `slots[r]` is the arena slot of `keys[r]`'s metadata.
    slots: Vec<u32>,
    /// Delta keys, strictly increasing, disjoint from `keys`, length
    /// at most [`DELTA_CAP`].
    dkeys: Vec<u64>,
    /// Delta positions, parallel to `dkeys`.
    dpos: Vec<usize>,
    /// Delta arena slots, parallel to `dkeys`.
    dslots: Vec<u32>,
    /// Stable metadata storage; slots are recycled via `free`.
    arena: Vec<Entry<M>>,
    free: Vec<u32>,
}

impl<M> Default for FlatIndex<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> FlatIndex<M> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self {
            keys: Vec::new(),
            pos: Vec::new(),
            slots: Vec::new(),
            dkeys: Vec::new(),
            dpos: Vec::new(),
            dslots: Vec::new(),
            arena: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len() + self.dkeys.len()
    }

    /// Whether the index holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.dkeys.is_empty()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.pos.clear();
        self.slots.clear();
        self.dkeys.clear();
        self.dpos.clear();
        self.dslots.clear();
        self.arena.clear();
        self.free.clear();
    }

    /// Sorted location of the entry behind `id`: re-search by its
    /// (immutable) key.
    #[inline]
    fn loc_of(&self, id: NodeId) -> Loc {
        let key = self.arena[id.0 as usize].key;
        let r = count_le(&self.keys, key);
        if r > 0 && self.keys[r - 1] == key {
            return Loc::Main(r - 1);
        }
        let d = count_le(&self.dkeys, key);
        debug_assert!(d > 0 && self.dkeys[d - 1] == key, "stale handle");
        Loc::Delta(d - 1)
    }

    /// Key of the entry behind `id`.
    #[inline]
    pub fn key(&self, id: NodeId) -> u64 {
        self.arena[id.0 as usize].key
    }

    /// Position of the entry behind `id` (`O(log n)`: key re-search).
    #[inline]
    pub fn pos(&self, id: NodeId) -> usize {
        match self.loc_of(id) {
            Loc::Main(i) => self.pos[i],
            Loc::Delta(i) => self.dpos[i],
        }
    }

    /// Overwrites the position of the entry behind `id`.
    ///
    /// As with the AVL representation, positions carry no ordering
    /// obligation inside the index; the cracker invariant that positions
    /// are monotone in key order is the caller's to maintain.
    #[inline]
    pub fn set_pos(&mut self, id: NodeId, pos: usize) {
        match self.loc_of(id) {
            Loc::Main(i) => self.pos[i] = pos,
            Loc::Delta(i) => self.dpos[i] = pos,
        }
    }

    /// Metadata of the entry behind `id`.
    #[inline]
    pub fn meta(&self, id: NodeId) -> &M {
        &self.arena[id.0 as usize].meta
    }

    /// Mutable metadata of the entry behind `id`.
    #[inline]
    pub fn meta_mut(&mut self, id: NodeId) -> &mut M {
        &mut self.arena[id.0 as usize].meta
    }

    /// The `(key, pos, handle)` triple at main rank `i` / delta rank `i`.
    #[inline]
    fn triple(&self, loc: Loc) -> (u64, usize, NodeId) {
        match loc {
            Loc::Main(i) => (self.keys[i], self.pos[i], NodeId(self.slots[i])),
            Loc::Delta(i) => (self.dkeys[i], self.dpos[i], NodeId(self.dslots[i])),
        }
    }

    /// Both neighbors of `probe` in one pass: the greatest entry with
    /// key `<= probe` and the smallest with key `> probe`, as
    /// `(key, pos, handle)` triples. This is the piece lookup: one
    /// search per level (main + delta), everything else O(1).
    #[inline]
    #[allow(clippy::type_complexity)]
    pub fn neighbors(
        &self,
        probe: u64,
    ) -> (Option<(u64, usize, NodeId)>, Option<(u64, usize, NodeId)>) {
        let rm = count_le(&self.keys, probe);
        let rd = count_le(&self.dkeys, probe);
        // Predecessor-or-equal: the larger of the two candidates (keys
        // are disjoint across levels, so strict comparison decides).
        let pred = match (rm > 0, rd > 0) {
            (true, true) => Some(if self.keys[rm - 1] >= self.dkeys[rd - 1] {
                Loc::Main(rm - 1)
            } else {
                Loc::Delta(rd - 1)
            }),
            (true, false) => Some(Loc::Main(rm - 1)),
            (false, true) => Some(Loc::Delta(rd - 1)),
            (false, false) => None,
        };
        // Strict successor: the smaller of the two candidates.
        let succ = match (rm < self.keys.len(), rd < self.dkeys.len()) {
            (true, true) => Some(if self.keys[rm] <= self.dkeys[rd] {
                Loc::Main(rm)
            } else {
                Loc::Delta(rd)
            }),
            (true, false) => Some(Loc::Main(rm)),
            (false, true) => Some(Loc::Delta(rd)),
            (false, false) => None,
        };
        (pred.map(|l| self.triple(l)), succ.map(|l| self.triple(l)))
    }

    /// Looks up the entry with exactly `key`.
    #[inline]
    pub fn find(&self, key: u64) -> Option<NodeId> {
        let r = count_le(&self.keys, key);
        if r > 0 && self.keys[r - 1] == key {
            return Some(NodeId(self.slots[r - 1]));
        }
        let d = count_le(&self.dkeys, key);
        (d > 0 && self.dkeys[d - 1] == key).then(|| NodeId(self.dslots[d - 1]))
    }

    /// Greatest entry with key `<= key`.
    #[inline]
    pub fn predecessor_or_equal(&self, key: u64) -> Option<NodeId> {
        self.neighbors(key).0.map(|(_, _, id)| id)
    }

    /// Greatest entry with key `< key`.
    #[inline]
    pub fn predecessor_strict(&self, key: u64) -> Option<NodeId> {
        if key == 0 {
            return None;
        }
        self.predecessor_or_equal(key - 1)
    }

    /// Smallest entry with key `> key`.
    #[inline]
    pub fn successor_strict(&self, key: u64) -> Option<NodeId> {
        self.neighbors(key).1.map(|(_, _, id)| id)
    }

    /// Smallest entry with key `>= key`.
    #[inline]
    pub fn successor_or_equal(&self, key: u64) -> Option<NodeId> {
        if key == 0 {
            return self.min();
        }
        self.successor_strict(key - 1)
    }

    /// Entry with the smallest key.
    #[inline]
    pub fn min(&self) -> Option<NodeId> {
        match (self.keys.first(), self.dkeys.first()) {
            (Some(m), Some(d)) if d < m => Some(NodeId(self.dslots[0])),
            (Some(_), _) => Some(NodeId(self.slots[0])),
            (None, Some(_)) => Some(NodeId(self.dslots[0])),
            (None, None) => None,
        }
    }

    /// Entry with the greatest key.
    #[inline]
    pub fn max(&self) -> Option<NodeId> {
        match (self.keys.last(), self.dkeys.last()) {
            (Some(m), Some(d)) if d > m => Some(NodeId(*self.dslots.last().expect("parallel"))),
            (Some(_), _) => Some(NodeId(*self.slots.last().expect("parallel"))),
            (None, Some(_)) => Some(NodeId(*self.dslots.last().expect("parallel"))),
            (None, None) => None,
        }
    }

    fn alloc(&mut self, key: u64, meta: M) -> u32 {
        let entry = Entry { key, meta };
        if let Some(slot) = self.free.pop() {
            self.arena[slot as usize] = entry;
            slot
        } else {
            self.arena.push(entry);
            (self.arena.len() - 1) as u32
        }
    }

    /// Inserts `(key, pos, meta)`.
    ///
    /// Returns `(id, true)` for a fresh entry, or `(existing_id, false)`
    /// if the key was already present (the existing entry is left
    /// untouched — a crack at an existing value is the same crack). The
    /// entry lands in the delta buffer; when the delta reaches
    /// [`DELTA_CAP`] it bulk-merges into the main arrays.
    pub fn insert(&mut self, key: u64, pos: usize, meta: M) -> (NodeId, bool) {
        // Inline dedupe instead of find(): the delta search doubles as
        // the insertion rank, so a fresh insert costs two searches.
        let r = count_le(&self.keys, key);
        if r > 0 && self.keys[r - 1] == key {
            return (NodeId(self.slots[r - 1]), false);
        }
        let d = count_le(&self.dkeys, key);
        if d > 0 && self.dkeys[d - 1] == key {
            return (NodeId(self.dslots[d - 1]), false);
        }
        let slot = self.alloc(key, meta);
        self.dkeys.insert(d, key);
        self.dpos.insert(d, pos);
        self.dslots.insert(d, slot);
        if self.dkeys.len() >= DELTA_CAP {
            self.merge_delta();
        }
        (NodeId(slot), true)
    }

    /// Merges the delta into the main arrays: one backward in-place
    /// linear merge, no extra allocation beyond the `Vec` growth.
    fn merge_delta(&mut self) {
        let (m, d) = (self.keys.len(), self.dkeys.len());
        if d == 0 {
            return;
        }
        self.keys.resize(m + d, 0);
        self.pos.resize(m + d, 0);
        self.slots.resize(m + d, 0);
        let (mut i, mut j) = (m, d);
        for w in (0..m + d).rev() {
            let take_delta = i == 0 || (j > 0 && self.dkeys[j - 1] > self.keys[i - 1]);
            if take_delta {
                j -= 1;
                self.keys[w] = self.dkeys[j];
                self.pos[w] = self.dpos[j];
                self.slots[w] = self.dslots[j];
            } else {
                i -= 1;
                self.keys[w] = self.keys[i];
                self.pos[w] = self.pos[i];
                self.slots[w] = self.slots[i];
            }
            if j == 0 {
                break; // the untouched prefix is already in place
            }
        }
        self.dkeys.clear();
        self.dpos.clear();
        self.dslots.clear();
    }

    /// Removes the entry with `key`, returning its `(pos, meta)`.
    pub fn remove(&mut self, key: u64) -> Option<(usize, M)>
    where
        M: Default,
    {
        let r = count_le(&self.keys, key);
        let (pos, slot) = if r > 0 && self.keys[r - 1] == key {
            self.keys.remove(r - 1);
            let pos = self.pos.remove(r - 1);
            (pos, self.slots.remove(r - 1))
        } else {
            let d = count_le(&self.dkeys, key);
            if d == 0 || self.dkeys[d - 1] != key {
                return None;
            }
            self.dkeys.remove(d - 1);
            let pos = self.dpos.remove(d - 1);
            (pos, self.dslots.remove(d - 1))
        };
        let meta = std::mem::take(&mut self.arena[slot as usize].meta);
        self.free.push(slot);
        Some((pos, meta))
    }

    /// Ascending iterator over `(key, pos, &meta)` — allocation-free (a
    /// two-cursor merge over the main and delta arrays).
    pub fn iter_asc(&self) -> FlatAscIter<'_, M> {
        FlatAscIter {
            flat: self,
            main: 0,
            delta: 0,
        }
    }

    /// Ascending `(key, pos, handle)` cursor, allocation-free; the
    /// piece iterator of [`crate::CrackerIndex`] drives this.
    pub fn iter_triples(&self) -> FlatTripleIter<'_, M> {
        FlatTripleIter {
            flat: self,
            main: 0,
            delta: 0,
        }
    }

    /// The next `(key, pos, handle)` in key order across both levels,
    /// advancing whichever cursor supplied it.
    #[inline]
    fn next_merged(&self, main: &mut usize, delta: &mut usize) -> Option<(u64, usize, NodeId)> {
        let take_main = match (self.keys.get(*main), self.dkeys.get(*delta)) {
            (Some(m), Some(d)) => m < d,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let loc = if take_main {
            let l = Loc::Main(*main);
            *main += 1;
            l
        } else {
            let l = Loc::Delta(*delta);
            *delta += 1;
            l
        };
        Some(self.triple(loc))
    }

    /// Checks the structural invariants: both levels strictly
    /// increasing and mutually disjoint, parallel arrays in lockstep,
    /// slot/arena keys consistent, free list disjoint from live slots,
    /// delta within capacity.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.pos.len() != self.keys.len() || self.slots.len() != self.keys.len() {
            return Err("main arrays out of lockstep".into());
        }
        if self.dpos.len() != self.dkeys.len() || self.dslots.len() != self.dkeys.len() {
            return Err("delta arrays out of lockstep".into());
        }
        if self.dkeys.len() >= DELTA_CAP {
            return Err(format!("delta holds {} >= cap {}", self.dkeys.len(), DELTA_CAP));
        }
        for (name, keys) in [("main", &self.keys), ("delta", &self.dkeys)] {
            for w in keys.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("{name} keys not strictly increasing: {} >= {}", w[0], w[1]));
                }
            }
        }
        for k in &self.dkeys {
            let r = count_le(&self.keys, *k);
            if r > 0 && self.keys[r - 1] == *k {
                return Err(format!("key {k} present in both levels"));
            }
        }
        let live = self
            .slots
            .iter()
            .enumerate()
            .map(|(r, s)| (*s, self.keys[r]))
            .chain(
                self.dslots
                    .iter()
                    .enumerate()
                    .map(|(r, s)| (*s, self.dkeys[r])),
            );
        for (slot, key) in live {
            let entry = self
                .arena
                .get(slot as usize)
                .ok_or_else(|| format!("slot {slot} out of arena bounds"))?;
            if entry.key != key {
                return Err(format!("slot {slot}: arena key {} != sorted key {key}", entry.key));
            }
            if self.free.contains(&slot) {
                return Err(format!("slot {slot} is live and on the free list"));
            }
        }
        if self.keys.len() + self.dkeys.len() + self.free.len() != self.arena.len() {
            return Err("arena slots neither live nor free".into());
        }
        Ok(())
    }
}

/// Ascending iterator over a [`FlatIndex`], see [`FlatIndex::iter_asc`].
pub struct FlatAscIter<'a, M> {
    flat: &'a FlatIndex<M>,
    main: usize,
    delta: usize,
}

impl<'a, M> Iterator for FlatAscIter<'a, M> {
    type Item = (u64, usize, &'a M);

    fn next(&mut self) -> Option<Self::Item> {
        let (k, p, id) = self
            .flat
            .next_merged(&mut self.main, &mut self.delta)?;
        Some((k, p, &self.flat.arena[id.0 as usize].meta))
    }
}

/// Ascending handle cursor, see [`FlatIndex::iter_triples`].
pub struct FlatTripleIter<'a, M> {
    flat: &'a FlatIndex<M>,
    main: usize,
    delta: usize,
}

impl<M> Iterator for FlatTripleIter<'_, M> {
    type Item = (u64, usize, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        self.flat.next_merged(&mut self.main, &mut self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn count_le_variants_match_partition_point() {
        let a: Vec<u64> = vec![2, 4, 4, 7, 10, 10, 10, 15];
        for probe in 0..20u64 {
            let expect = a.partition_point(|x| *x <= probe);
            assert_eq!(count_le(&a, probe), expect, "probe {probe}");
            assert_eq!(count_le_predicated(&a, probe), expect, "predicated {probe}");
        }
        for a in [vec![], vec![3u64]] {
            for probe in [0u64, 2, 3, 4, u64::MAX] {
                assert_eq!(count_le(&a, probe), count_le_predicated(&a, probe));
            }
        }
    }

    fn build(keys: &[u64]) -> FlatIndex<u32> {
        let mut f = FlatIndex::new();
        for (i, k) in keys.iter().enumerate() {
            f.insert(*k, i, i as u32);
        }
        f.check_invariants().unwrap();
        f
    }

    #[test]
    fn empty_index_queries() {
        let f: FlatIndex<()> = FlatIndex::new();
        assert!(f.is_empty());
        assert!(f.find(5).is_none());
        assert!(f.predecessor_or_equal(5).is_none());
        assert!(f.successor_strict(5).is_none());
        assert!(f.min().is_none());
        assert!(f.max().is_none());
        assert_eq!(f.neighbors(5), (None, None));
    }

    #[test]
    fn insert_dedupes_keys() {
        let mut f = FlatIndex::new();
        let (a, fresh_a) = f.insert(10, 1, ());
        let (b, fresh_b) = f.insert(10, 99, ());
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(a, b);
        assert_eq!(f.pos(a), 1, "existing entry untouched");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn neighbor_queries_match_btreemap_across_merges() {
        // 500 keys > DELTA_CAP: several bulk merges happen, and at the
        // end entries live in both levels.
        let keys: Vec<u64> = (0..500).map(|i| (i * 977) % 1000).collect();
        let f = build(&keys);
        let model: BTreeMap<u64, ()> = keys.iter().map(|k| (*k, ())).collect();
        for probe in 0..1001 {
            let pred = f.predecessor_or_equal(probe).map(|id| f.key(id));
            assert_eq!(
                pred,
                model.range(..=probe).next_back().map(|(k, _)| *k),
                "pred_or_eq({probe})"
            );
            let succ = f.successor_strict(probe).map(|id| f.key(id));
            assert_eq!(
                succ,
                model
                    .range((std::ops::Bound::Excluded(probe), std::ops::Bound::Unbounded))
                    .next()
                    .map(|(k, _)| *k),
                "succ_strict({probe})"
            );
            let spred = f.predecessor_strict(probe).map(|id| f.key(id));
            assert_eq!(
                spred,
                model.range(..probe).next_back().map(|(k, _)| *k),
                "pred_strict({probe})"
            );
            let seq = f.successor_or_equal(probe).map(|id| f.key(id));
            assert_eq!(
                seq,
                model.range(probe..).next().map(|(k, _)| *k),
                "succ_or_eq({probe})"
            );
            // The combined neighbors call agrees with the individual ones.
            let (np, ns) = f.neighbors(probe);
            assert_eq!(np.map(|(k, _, _)| k), pred);
            assert_eq!(ns.map(|(k, _, _)| k), succ);
        }
    }

    #[test]
    fn handles_stay_valid_across_inserts_and_merges() {
        let mut f = FlatIndex::new();
        let (id50, _) = f.insert(50_000, 500, 0u32);
        // Enough inserts on both sides to trigger multiple delta merges.
        for i in 0..1_000u64 {
            f.insert((i * 7_919) % 100_000, i as usize, 0u32);
        }
        assert_eq!(f.key(id50), 50_000);
        assert_eq!(f.pos(id50), 500);
        f.set_pos(id50, 501);
        *f.meta_mut(id50) += 7;
        assert_eq!(f.pos(id50), 501);
        assert_eq!(*f.meta(id50), 7);
        f.check_invariants().unwrap();
    }

    #[test]
    fn iter_asc_is_sorted_and_complete() {
        let keys: Vec<u64> = (0..300).map(|i| (i * 613) % 997).collect();
        let f = build(&keys);
        let got: Vec<u64> = f.iter_asc().map(|(k, _, _)| k).collect();
        let triples: Vec<u64> = f.iter_triples().map(|(k, _, _)| k).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(got, expect);
        assert_eq!(triples, expect);
        // Triples resolve back to consistent key/pos via the handle.
        for (k, p, id) in f.iter_triples() {
            assert_eq!(f.key(id), k);
            assert_eq!(f.pos(id), p);
        }
    }

    #[test]
    fn remove_matches_model_and_recycles_slots() {
        let keys: Vec<u64> = (0..400).map(|i| (i * 31) % 401).collect();
        let mut f = build(&keys);
        let mut model: BTreeMap<u64, ()> = keys.iter().map(|k| (*k, ())).collect();
        for probe in (0..401).step_by(3) {
            assert_eq!(
                f.remove(probe).is_some(),
                model.remove(&probe).is_some(),
                "remove({probe})"
            );
            f.check_invariants().unwrap();
        }
        let got: Vec<u64> = f.iter_asc().map(|(k, _, _)| k).collect();
        let expect: Vec<u64> = model.keys().copied().collect();
        assert_eq!(got, expect);
        // Re-inserts reuse freed arena slots.
        let arena_len = f.arena.len();
        for k in 1000..1010u64 {
            f.insert(k, 0, 0);
        }
        assert!(f.arena.len() <= arena_len + 10);
        f.check_invariants().unwrap();
    }

    #[test]
    fn min_max_across_levels() {
        let mut f: FlatIndex<()> = FlatIndex::new();
        // Fill past a merge so main holds the middle, then plant fresh
        // delta entries at both extremes.
        for i in 0..DELTA_CAP as u64 {
            f.insert(1_000 + i, 0, ());
        }
        assert!(f.dkeys.is_empty(), "merge must have fired");
        f.insert(5, 0, ());
        f.insert(9_999, 0, ());
        assert_eq!(f.key(f.min().unwrap()), 5);
        assert_eq!(f.key(f.max().unwrap()), 9_999);
        f.check_invariants().unwrap();
    }

    #[test]
    fn clear_resets() {
        let mut f = build(&[1, 2, 3]);
        f.clear();
        assert!(f.is_empty());
        assert!(f.min().is_none());
        let (id, fresh) = f.insert(9, 0, 0);
        assert!(fresh);
        assert_eq!(f.key(id), 9);
        f.check_invariants().unwrap();
    }
}
