//! A path-compressed radix trie keyed by crack value.
//!
//! The third cracker-index representation (after the paper's
//! [`AvlTree`](crate::AvlTree) and PR 4's [`crate::FlatIndex`]), modeled
//! on the adaptive-radix-tree cracking study of Wu et al.: crack keys are
//! `u64`s consumed four bits (one nibble) at a time, inner nodes branch
//! 16 ways, and single-child chains are path-compressed away — every
//! inner node holds at least two occupied children, so the trie height is
//! bounded by the 16-nibble key length *and* by `log16` of the crack
//! count. Lookups, neighbor queries, inserts and removals are therefore
//! `O(min(16, log16 n))` — independent of the crack count once pieces are
//! fine enough, which is exactly the regime (tens of thousands of cracks)
//! where the flat representation's `O(log n)` binary search and the AVL
//! tree's pointer chasing keep paying per extra crack.
//!
//! Entry payloads (`key`, `pos`, metadata) live in a slot arena indexed
//! by [`NodeId`], so handles are stable across later inserts — the same
//! contract the other two representations give the Ripple update path —
//! and handle dereferences ([`RadixIndex::key`], [`RadixIndex::pos`],
//! [`RadixIndex::set_pos`], metadata access) are a single arena load,
//! with no re-descent at all.

use crate::avl::NodeId;

/// Sentinel child pointer: "no child".
const NONE: u32 = u32::MAX;
/// Tag bit distinguishing leaf children (entry-arena slots) from inner
/// children (node-arena indices).
const LEAF_BIT: u32 = 1 << 31;

#[inline]
fn is_leaf(ptr: u32) -> bool {
    ptr & LEAF_BIT != 0
}

#[inline]
fn leaf(slot: u32) -> u32 {
    debug_assert_eq!(slot & LEAF_BIT, 0, "entry arena overflow");
    slot | LEAF_BIT
}

#[inline]
fn untag(ptr: u32) -> u32 {
    ptr & !LEAF_BIT
}

/// The `depth`-th nibble of `key`, most-significant first (`depth < 16`).
#[inline]
fn nib(key: u64, depth: u8) -> usize {
    ((key >> (60 - 4 * depth as u32)) & 0xF) as usize
}

/// Mask selecting the first `depth` nibbles of a key (`depth <= 16`).
#[inline]
fn prefix_mask(depth: u8) -> u64 {
    if depth == 0 {
        0
    } else {
        u64::MAX << (64 - 4 * depth as u32)
    }
}

/// Index of the first nibble where two distinct keys differ.
#[inline]
fn diverge_depth(a: u64, b: u64) -> u8 {
    debug_assert_ne!(a, b);
    ((a ^ b).leading_zeros() / 4) as u8
}

/// One crack entry: the payload behind a [`NodeId`].
#[derive(Debug, Clone)]
struct Entry<M> {
    key: u64,
    pos: usize,
    meta: M,
}

/// One inner trie node: branches on nibble `depth` of keys sharing
/// `prefix` (the first `depth` nibbles; lower bits zero).
#[derive(Debug, Clone)]
struct RNode {
    prefix: u64,
    depth: u8,
    /// Bitmap of occupied `children` slots (bit `i` ⇔ `children[i] != NONE`).
    occupied: u16,
    children: [u32; 16],
}

impl RNode {
    fn new(depth: u8, prefix: u64) -> Self {
        debug_assert_eq!(prefix & !prefix_mask(depth), 0, "prefix beyond depth");
        Self {
            prefix,
            depth,
            occupied: 0,
            children: [NONE; 16],
        }
    }

    #[inline]
    fn set_child(&mut self, i: usize, ptr: u32) {
        debug_assert_ne!(ptr, NONE);
        self.children[i] = ptr;
        self.occupied |= 1 << i;
    }

    #[inline]
    fn clear_child(&mut self, i: usize) {
        self.children[i] = NONE;
        self.occupied &= !(1 << i);
    }
}

/// A path-compressed 16-ary radix trie mapping `u64` keys to array
/// positions plus metadata `M` — API-identical to [`crate::AvlTree`] and
/// [`crate::FlatIndex`], selected via
/// [`IndexPolicy::Radix`](crate::IndexPolicy::Radix).
#[derive(Debug, Clone)]
pub struct RadixIndex<M> {
    entries: Vec<Entry<M>>,
    free_entries: Vec<u32>,
    nodes: Vec<RNode>,
    free_nodes: Vec<u32>,
    /// Tagged pointer to the trie root ([`NONE`] when empty; may be a
    /// single leaf).
    root: u32,
    len: usize,
}

impl<M> Default for RadixIndex<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> RadixIndex<M> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            free_entries: Vec::new(),
            nodes: Vec::new(),
            free_nodes: Vec::new(),
            root: NONE,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.free_entries.clear();
        self.nodes.clear();
        self.free_nodes.clear();
        self.root = NONE;
        self.len = 0;
    }

    #[inline]
    fn entry(&self, slot: u32) -> &Entry<M> {
        &self.entries[slot as usize]
    }

    /// Key of the entry behind `id` — one arena load, no descent.
    pub fn key(&self, id: NodeId) -> u64 {
        self.entry(id.0).key
    }

    /// Position of the entry behind `id`.
    pub fn pos(&self, id: NodeId) -> usize {
        self.entry(id.0).pos
    }

    /// Overwrites the position of the entry behind `id`.
    ///
    /// Positions carry no ordering obligation inside the trie (only keys
    /// do); the cracker invariant that positions are monotone in key
    /// order is the caller's to maintain.
    pub fn set_pos(&mut self, id: NodeId, pos: usize) {
        self.entries[id.0 as usize].pos = pos;
    }

    /// Metadata of the entry behind `id`.
    pub fn meta(&self, id: NodeId) -> &M {
        &self.entry(id.0).meta
    }

    /// Mutable metadata of the entry behind `id`.
    pub fn meta_mut(&mut self, id: NodeId) -> &mut M {
        &mut self.entries[id.0 as usize].meta
    }

    fn alloc_entry(&mut self, key: u64, pos: usize, meta: M) -> u32 {
        let entry = Entry { key, pos, meta };
        if let Some(slot) = self.free_entries.pop() {
            self.entries[slot as usize] = entry;
            slot
        } else {
            self.entries.push(entry);
            (self.entries.len() - 1) as u32
        }
    }

    fn alloc_node(&mut self, depth: u8, prefix: u64) -> u32 {
        let node = RNode::new(depth, prefix);
        if let Some(i) = self.free_nodes.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Rewrites the child slot that `parent` describes (`None` = root).
    #[inline]
    fn relink(&mut self, parent: Option<(u32, usize)>, child: u32) {
        match parent {
            Some((node, i)) => self.nodes[node as usize].set_child(i, child),
            None => self.root = child,
        }
    }

    /// Inserts `(key, pos, meta)`.
    ///
    /// Returns `(id, true)` for a fresh entry, or `(existing_id, false)`
    /// if the key was already present (the existing entry is left
    /// untouched — a crack at an existing value is the same crack).
    pub fn insert(&mut self, key: u64, pos: usize, meta: M) -> (NodeId, bool) {
        if self.root == NONE {
            let slot = self.alloc_entry(key, pos, meta);
            self.root = leaf(slot);
            self.len += 1;
            return (NodeId(slot), true);
        }
        let mut parent: Option<(u32, usize)> = None;
        let mut cur = self.root;
        loop {
            if is_leaf(cur) {
                let slot = untag(cur);
                let existing = self.entry(slot).key;
                if existing == key {
                    return (NodeId(slot), false);
                }
                // Split the leaf edge at the first diverging nibble.
                let depth = diverge_depth(existing, key);
                let fresh = self.alloc_entry(key, pos, meta);
                let node = self.alloc_node(depth, key & prefix_mask(depth));
                self.nodes[node as usize].set_child(nib(existing, depth), cur);
                self.nodes[node as usize].set_child(nib(key, depth), leaf(fresh));
                self.relink(parent, node);
                self.len += 1;
                return (NodeId(fresh), true);
            }
            let n = &self.nodes[cur as usize];
            let depth = n.depth;
            if key & prefix_mask(depth) != n.prefix {
                // The compressed path above this node diverges from `key`:
                // interpose a new node at the first diverging nibble.
                let split = diverge_depth(n.prefix, key);
                debug_assert!(split < depth);
                let old_nib = nib(n.prefix, split);
                let fresh = self.alloc_entry(key, pos, meta);
                let node = self.alloc_node(split, key & prefix_mask(split));
                self.nodes[node as usize].set_child(old_nib, cur);
                self.nodes[node as usize].set_child(nib(key, split), leaf(fresh));
                self.relink(parent, node);
                self.len += 1;
                return (NodeId(fresh), true);
            }
            let nb = nib(key, depth);
            if n.children[nb] == NONE {
                let fresh = self.alloc_entry(key, pos, meta);
                self.nodes[cur as usize].set_child(nb, leaf(fresh));
                self.len += 1;
                return (NodeId(fresh), true);
            }
            parent = Some((cur, nb));
            cur = self.nodes[cur as usize].children[nb];
        }
    }

    /// Looks up the entry with exactly `key`.
    pub fn find(&self, key: u64) -> Option<NodeId> {
        let mut cur = self.root;
        while cur != NONE {
            if is_leaf(cur) {
                let slot = untag(cur);
                return (self.entry(slot).key == key).then_some(NodeId(slot));
            }
            let n = &self.nodes[cur as usize];
            if key & prefix_mask(n.depth) != n.prefix {
                return None;
            }
            cur = n.children[nib(key, n.depth)];
        }
        None
    }

    /// Entry with the greatest key in the subtree under `ptr`.
    fn subtree_max(&self, mut ptr: u32) -> NodeId {
        loop {
            if is_leaf(ptr) {
                return NodeId(untag(ptr));
            }
            let n = &self.nodes[ptr as usize];
            debug_assert_ne!(n.occupied, 0, "inner node with no children");
            let hi = 15 - n.occupied.leading_zeros() as usize;
            ptr = n.children[hi];
        }
    }

    /// Entry with the smallest key in the subtree under `ptr`.
    fn subtree_min(&self, mut ptr: u32) -> NodeId {
        loop {
            if is_leaf(ptr) {
                return NodeId(untag(ptr));
            }
            let n = &self.nodes[ptr as usize];
            debug_assert_ne!(n.occupied, 0, "inner node with no children");
            ptr = n.children[n.occupied.trailing_zeros() as usize];
        }
    }

    /// Greatest entry with key `<= key`.
    pub fn predecessor_or_equal(&self, key: u64) -> Option<NodeId> {
        // One root-to-leaf descent; `best` remembers the nearest subtree
        // hanging off the path whose keys are all `< key`.
        let mut best = NONE;
        let mut cur = self.root;
        if cur == NONE {
            return None;
        }
        loop {
            if is_leaf(cur) {
                let slot = untag(cur);
                if self.entry(slot).key <= key {
                    return Some(NodeId(slot));
                }
                break;
            }
            let n = &self.nodes[cur as usize];
            let key_prefix = key & prefix_mask(n.depth);
            if key_prefix != n.prefix {
                if n.prefix < key_prefix {
                    // Every key under this node shares `prefix < key`'s
                    // prefix, so the whole subtree sorts below `key`.
                    return Some(self.subtree_max(cur));
                }
                break;
            }
            let nb = nib(key, n.depth);
            let below = u32::from(n.occupied) & ((1u32 << nb) - 1);
            if below != 0 {
                best = n.children[31 - below.leading_zeros() as usize];
            }
            let child = n.children[nb];
            if child == NONE {
                break;
            }
            cur = child;
        }
        (best != NONE).then(|| self.subtree_max(best))
    }

    /// Greatest entry with key `< key`.
    pub fn predecessor_strict(&self, key: u64) -> Option<NodeId> {
        if key == 0 {
            return None;
        }
        self.predecessor_or_equal(key - 1)
    }

    /// Smallest entry with key `> key`.
    pub fn successor_strict(&self, key: u64) -> Option<NodeId> {
        let mut best = NONE;
        let mut cur = self.root;
        if cur == NONE {
            return None;
        }
        loop {
            if is_leaf(cur) {
                let slot = untag(cur);
                if self.entry(slot).key > key {
                    return Some(NodeId(slot));
                }
                break;
            }
            let n = &self.nodes[cur as usize];
            let key_prefix = key & prefix_mask(n.depth);
            if key_prefix != n.prefix {
                if n.prefix > key_prefix {
                    return Some(self.subtree_min(cur));
                }
                break;
            }
            let nb = nib(key, n.depth);
            let above = u32::from(n.occupied) >> (nb + 1);
            if above != 0 {
                best = n.children[nb + 1 + above.trailing_zeros() as usize];
            }
            let child = n.children[nb];
            if child == NONE {
                break;
            }
            cur = child;
        }
        (best != NONE).then(|| self.subtree_min(best))
    }

    /// Smallest entry with key `>= key`.
    pub fn successor_or_equal(&self, key: u64) -> Option<NodeId> {
        if key == 0 {
            return self.min();
        }
        self.successor_strict(key - 1)
    }

    /// Both piece edges around `probe` in one call: the greatest entry
    /// with key `<= probe` and the smallest with key `> probe`, each as
    /// `(key, pos, id)` — the lookup the hot `piece_containing` path uses.
    #[allow(clippy::type_complexity)]
    pub fn neighbors(
        &self,
        probe: u64,
    ) -> (
        Option<(u64, usize, NodeId)>,
        Option<(u64, usize, NodeId)>,
    ) {
        let pred = self
            .predecessor_or_equal(probe)
            .map(|id| (self.key(id), self.pos(id), id));
        let succ = self
            .successor_strict(probe)
            .map(|id| (self.key(id), self.pos(id), id));
        (pred, succ)
    }

    /// Entry with the smallest key.
    pub fn min(&self) -> Option<NodeId> {
        (self.root != NONE).then(|| self.subtree_min(self.root))
    }

    /// Entry with the greatest key.
    pub fn max(&self) -> Option<NodeId> {
        (self.root != NONE).then(|| self.subtree_max(self.root))
    }

    /// Removes the entry with `key`, returning its `(pos, meta)`.
    pub fn remove(&mut self, key: u64) -> Option<(usize, M)>
    where
        M: Default,
    {
        let mut grandparent: Option<(u32, usize)> = None;
        let mut parent: Option<(u32, usize)> = None;
        let mut cur = self.root;
        if cur == NONE {
            return None;
        }
        loop {
            if is_leaf(cur) {
                let slot = untag(cur);
                if self.entry(slot).key != key {
                    return None;
                }
                match parent {
                    None => self.root = NONE,
                    Some((node, i)) => {
                        self.nodes[node as usize].clear_child(i);
                        if self.nodes[node as usize].occupied.count_ones() == 1 {
                            // Restore path compression: splice out the
                            // now-single-child node.
                            let only_nib =
                                self.nodes[node as usize].occupied.trailing_zeros() as usize;
                            let only = self.nodes[node as usize].children[only_nib];
                            self.relink(grandparent, only);
                            self.free_nodes.push(node);
                        }
                    }
                }
                self.len -= 1;
                let entry = &mut self.entries[slot as usize];
                let pos = entry.pos;
                let meta = std::mem::take(&mut entry.meta);
                self.free_entries.push(slot);
                return Some((pos, meta));
            }
            let n = &self.nodes[cur as usize];
            if key & prefix_mask(n.depth) != n.prefix {
                return None;
            }
            let nb = nib(key, n.depth);
            let child = n.children[nb];
            if child == NONE {
                return None;
            }
            grandparent = parent;
            parent = Some((cur, nb));
            cur = child;
        }
    }

    /// Ascending iterator over `(key, pos, &meta)` triples.
    ///
    /// Allocates its traversal stack once per iteration (bounded by the
    /// trie height ≤ 16 levels × 15 siblings), like
    /// [`AvlTree::iter_asc`](crate::AvlTree::iter_asc).
    pub fn iter_asc(&self) -> RadixAscIter<'_, M> {
        RadixAscIter {
            idx: self,
            stack: if self.root == NONE {
                Vec::new()
            } else {
                vec![self.root]
            },
        }
    }

    /// Ascending iterator over `(key, pos, id)` triples — the handle form
    /// of [`RadixIndex::iter_asc`], driving
    /// [`CrackerIndex::iter_pieces`](crate::CrackerIndex::iter_pieces).
    pub fn iter_triples(&self) -> RadixTripleIter<'_, M> {
        RadixTripleIter {
            idx: self,
            stack: if self.root == NONE {
                Vec::new()
            } else {
                vec![self.root]
            },
        }
    }

    /// Pops the stack down to the next leaf, pushing children of inner
    /// nodes in descending nibble order so leaves surface ascending.
    fn next_leaf(&self, stack: &mut Vec<u32>) -> Option<u32> {
        loop {
            let ptr = stack.pop()?;
            if is_leaf(ptr) {
                return Some(untag(ptr));
            }
            let n = &self.nodes[ptr as usize];
            for &child in n.children.iter().rev() {
                if child != NONE {
                    stack.push(child);
                }
            }
        }
    }

    /// Checks all structural invariants; used by tests and debug
    /// assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn walk<M>(
            t: &RadixIndex<M>,
            ptr: u32,
            req_prefix: u64,
            req_depth: u8,
            count: &mut usize,
        ) -> Result<(), String> {
            if is_leaf(ptr) {
                let e = t.entry(untag(ptr));
                if e.key & prefix_mask(req_depth) != req_prefix {
                    return Err(format!(
                        "leaf key {:#x} violates path prefix {:#x}/{}",
                        e.key, req_prefix, req_depth
                    ));
                }
                *count += 1;
                return Ok(());
            }
            let n = &t.nodes[ptr as usize];
            if n.depth < req_depth && req_depth > 0 {
                return Err(format!("node depth {} above its edge {}", n.depth, req_depth));
            }
            if n.prefix & prefix_mask(req_depth) != req_prefix {
                return Err(format!(
                    "node prefix {:#x} violates path prefix {:#x}/{}",
                    n.prefix, req_prefix, req_depth
                ));
            }
            if n.prefix & !prefix_mask(n.depth) != 0 {
                return Err(format!(
                    "node prefix {:#x} has bits beyond depth {}",
                    n.prefix, n.depth
                ));
            }
            let mut occupied = 0u32;
            for (i, &child) in n.children.iter().enumerate() {
                let bit = n.occupied & (1 << i) != 0;
                if (child != NONE) != bit {
                    return Err(format!("occupancy bitmap out of sync at nibble {i}"));
                }
                if child != NONE {
                    occupied += 1;
                    let child_prefix = n.prefix | ((i as u64) << (60 - 4 * n.depth as u32));
                    walk(t, child, child_prefix, n.depth + 1, count)?;
                }
            }
            if occupied < 2 {
                return Err(format!(
                    "inner node at depth {} has {} children (path compression broken)",
                    n.depth, occupied
                ));
            }
            Ok(())
        }
        let mut count = 0usize;
        if self.root != NONE {
            walk(self, self.root, 0, 0, &mut count)?;
        }
        if count != self.len {
            return Err(format!("len {} but {} reachable entries", self.len, count));
        }
        let mut prev: Option<u64> = None;
        for (key, _, _) in self.iter_asc() {
            if let Some(p) = prev {
                if key <= p {
                    return Err(format!("iteration not strictly ascending: {p} then {key}"));
                }
            }
            prev = Some(key);
        }
        Ok(())
    }
}

/// Ascending iterator, see [`RadixIndex::iter_asc`].
pub struct RadixAscIter<'a, M> {
    idx: &'a RadixIndex<M>,
    stack: Vec<u32>,
}

impl<'a, M> Iterator for RadixAscIter<'a, M> {
    type Item = (u64, usize, &'a M);

    fn next(&mut self) -> Option<Self::Item> {
        let slot = self.idx.next_leaf(&mut self.stack)?;
        let e = &self.idx.entries[slot as usize];
        Some((e.key, e.pos, &e.meta))
    }
}

/// Ascending handle iterator, see [`RadixIndex::iter_triples`].
pub struct RadixTripleIter<'a, M> {
    idx: &'a RadixIndex<M>,
    stack: Vec<u32>,
}

impl<M> Iterator for RadixTripleIter<'_, M> {
    type Item = (u64, usize, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let slot = self.idx.next_leaf(&mut self.stack)?;
        let e = &self.idx.entries[slot as usize];
        Some((e.key, e.pos, NodeId(slot)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn build(keys: &[u64]) -> RadixIndex<u32> {
        let mut t = RadixIndex::new();
        for (i, k) in keys.iter().enumerate() {
            t.insert(*k, i, i as u32);
        }
        t.check_invariants().unwrap();
        t
    }

    #[test]
    fn empty_trie_queries() {
        let t: RadixIndex<()> = RadixIndex::new();
        assert!(t.is_empty());
        assert!(t.find(5).is_none());
        assert!(t.predecessor_or_equal(5).is_none());
        assert!(t.successor_strict(5).is_none());
        assert!(t.min().is_none());
        assert!(t.max().is_none());
        assert_eq!(t.neighbors(5), (None, None));
    }

    #[test]
    fn insert_dedupes_keys() {
        let mut t = RadixIndex::new();
        let (a, fresh_a) = t.insert(10, 1, ());
        let (b, fresh_b) = t.insert(10, 99, ());
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(a, b);
        assert_eq!(t.pos(a), 1, "existing entry untouched");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn neighbor_queries_match_btreemap() {
        let keys: Vec<u64> = (0..500).map(|i| (i * 977) % 1000).collect();
        let t = build(&keys);
        let model: BTreeMap<u64, ()> = keys.iter().map(|k| (*k, ())).collect();
        for probe in 0..1001 {
            let pred = t.predecessor_or_equal(probe).map(|id| t.key(id));
            let model_pred = model.range(..=probe).next_back().map(|(k, _)| *k);
            assert_eq!(pred, model_pred, "pred_or_eq({probe})");

            let succ = t.successor_strict(probe).map(|id| t.key(id));
            let model_succ = model
                .range((std::ops::Bound::Excluded(probe), std::ops::Bound::Unbounded))
                .next()
                .map(|(k, _)| *k);
            assert_eq!(succ, model_succ, "succ_strict({probe})");

            let spred = t.predecessor_strict(probe).map(|id| t.key(id));
            let model_spred = model.range(..probe).next_back().map(|(k, _)| *k);
            assert_eq!(spred, model_spred, "pred_strict({probe})");

            let seq = t.successor_or_equal(probe).map(|id| t.key(id));
            let model_seq = model.range(probe..).next().map(|(k, _)| *k);
            assert_eq!(seq, model_seq, "succ_or_eq({probe})");
        }
    }

    #[test]
    fn wide_keys_exercise_deep_and_compressed_paths() {
        // Keys chosen to share long prefixes (deep splits) and to sit at
        // opposite ends of the u64 domain (shallow splits) — both the
        // path-compression interpose and the leaf split run.
        let keys = [
            0u64,
            1,
            u64::MAX,
            u64::MAX - 1,
            0xDEAD_BEEF_0000_0000,
            0xDEAD_BEEF_0000_0001,
            0xDEAD_BEEF_8000_0000,
            1 << 63,
            (1 << 63) + 1,
        ];
        let t = build(&keys);
        let model: BTreeMap<u64, ()> = keys.iter().map(|k| (*k, ())).collect();
        assert_eq!(t.len(), model.len());
        for probe in keys.iter().flat_map(|k| [k.saturating_sub(1), *k, k.saturating_add(1)]) {
            let pred = t.predecessor_or_equal(probe).map(|id| t.key(id));
            assert_eq!(
                pred,
                model.range(..=probe).next_back().map(|(k, _)| *k),
                "pred_or_eq({probe:#x})"
            );
            let succ = t.successor_strict(probe).map(|id| t.key(id));
            assert_eq!(
                succ,
                model
                    .range((std::ops::Bound::Excluded(probe), std::ops::Bound::Unbounded))
                    .next()
                    .map(|(k, _)| *k),
                "succ_strict({probe:#x})"
            );
        }
        assert_eq!(t.key(t.min().unwrap()), 0);
        assert_eq!(t.key(t.max().unwrap()), u64::MAX);
    }

    #[test]
    fn iter_asc_is_sorted_and_complete() {
        let keys: Vec<u64> = (0..300).map(|i| (i * 613) % 997).collect();
        let t = build(&keys);
        let got: Vec<u64> = t.iter_asc().map(|(k, _, _)| k).collect();
        let mut expect: Vec<u64> = keys.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(got, expect);
        let triples: Vec<u64> = t.iter_triples().map(|(k, _, _)| k).collect();
        assert_eq!(triples, got);
        for (k, _, id) in t.iter_triples() {
            assert_eq!(t.key(id), k);
        }
    }

    #[test]
    fn remove_keeps_structure_and_content() {
        let keys: Vec<u64> = (0..400).map(|i| (i * 31) % 401).collect();
        let mut t = build(&keys);
        let mut model: BTreeMap<u64, ()> = keys.iter().map(|k| (*k, ())).collect();
        for probe in (0..401).step_by(3) {
            let got = t.remove(probe).is_some();
            let expect = model.remove(&probe).is_some();
            assert_eq!(got, expect, "remove({probe})");
            t.check_invariants().unwrap();
        }
        let got: Vec<u64> = t.iter_asc().map(|(k, _, _)| k).collect();
        let expect: Vec<u64> = model.keys().copied().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn remove_reuses_arena_slots() {
        let mut t = RadixIndex::new();
        for k in 0..100u64 {
            t.insert(k, 0, ());
        }
        let entry_slots = t.entries.len();
        for k in 0..50u64 {
            t.remove(k);
        }
        for k in 100..150u64 {
            t.insert(k, 0, ());
        }
        assert_eq!(t.entries.len(), entry_slots, "free list must recycle slots");
        t.check_invariants().unwrap();
    }

    #[test]
    fn handles_are_stable_across_inserts() {
        let mut t = RadixIndex::new();
        let (id, _) = t.insert(7_000, 3, 100u32);
        for k in 0..2_000u64 {
            t.insert(k * 17, 0, 0);
        }
        t.set_pos(id, 9);
        *t.meta_mut(id) += 1;
        assert_eq!(t.pos(id), 9);
        assert_eq!(*t.meta(id), 101);
        assert_eq!(t.key(id), 7_000);
        t.check_invariants().unwrap();
    }

    #[test]
    fn neighbors_resolves_both_edges() {
        let t = build(&[10, 30, 60]);
        let (pred, succ) = t.neighbors(35);
        assert_eq!(pred.map(|(k, _, _)| k), Some(30));
        assert_eq!(succ.map(|(k, _, _)| k), Some(60));
        let (pred, succ) = t.neighbors(5);
        assert!(pred.is_none());
        assert_eq!(succ.map(|(k, _, _)| k), Some(10));
        let (pred, succ) = t.neighbors(60);
        assert_eq!(pred.map(|(k, _, _)| k), Some(60));
        assert!(succ.is_none());
    }

    #[test]
    fn predecessor_strict_at_zero() {
        let t = build(&[0, 5]);
        assert!(t.predecessor_strict(0).is_none());
        assert_eq!(t.key(t.successor_or_equal(0).unwrap()), 0);
    }

    #[test]
    fn clear_resets() {
        let mut t = build(&[1, 2, 3]);
        t.clear();
        assert!(t.is_empty());
        assert!(t.min().is_none());
        let (id, fresh) = t.insert(9, 0, 0);
        assert!(fresh);
        assert_eq!(t.key(id), 9);
    }
}
