//! The cracker index: structural knowledge over a cracked column.
//!
//! "A cracking DBMS maintains indexes showing which piece holds which value
//! range, in a tree structure; original cracking uses AVL-trees" (Halim et
//! al. 2012, §3; Idreos et al., CIDR 2007). This crate provides:
//!
//! * [`AvlTree`] — a from-scratch, arena-based AVL tree mapping crack
//!   values (`u64`) to array positions, with per-node metadata;
//! * [`CrackerIndex`] — the piece-oriented view on top of it: given a key,
//!   find the piece `[start, end)` of the column that can contain it,
//!   together with the piece's value bounds and metadata.
//!
//! A crack `(v, p)` asserts: positions `< p` hold keys `< v`, positions
//! `>= p` hold keys `>= v`. Pieces are the gaps between consecutive cracks.
//! Per-piece metadata carries the crack counters of selective stochastic
//! cracking (ScrackMon) and the in-flight partition jobs of progressive
//! cracking; metadata is inherited across piece splits via [`PieceMeta`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod avl;
mod index;

pub use avl::{AvlTree, NodeId};
pub use index::{CrackerIndex, Piece, PieceMeta};
