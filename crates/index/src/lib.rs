//! The cracker index: structural knowledge over a cracked column.
//!
//! "A cracking DBMS maintains indexes showing which piece holds which value
//! range, in a tree structure; original cracking uses AVL-trees" (Halim et
//! al. 2012, §3; Idreos et al., CIDR 2007). This crate provides:
//!
//! * [`CrackerIndex`] — the piece-oriented view: given a key, find the
//!   piece `[start, end)` of the column that can contain it, together
//!   with the piece's value bounds and metadata. The physical
//!   representation is selected by [`IndexPolicy`];
//! * [`AvlTree`] — the paper's structure: a from-scratch, arena-based AVL
//!   tree mapping crack values (`u64`) to array positions;
//! * [`FlatIndex`] — the cache-conscious default: crack keys and
//!   positions in sorted parallel arrays (with a small insert-absorbing
//!   delta buffer), lower-bound searched over contiguous memory,
//!   metadata in a stable arena;
//! * [`RadixIndex`] — a path-compressed 16-ary radix trie (after the
//!   ART-cracking study of Wu et al.): `O(min(16, log16 n))` lookups
//!   independent of the crack count, free key-space midpoints for the
//!   data-driven engine family.
//!
//! All three representations produce bit-identical piece semantics; the
//! flat one wins on lookup locality at low-to-mid crack counts, the
//! radix trie once crack counts grow past the point where binary-search
//! depth dominates.
//!
//! A crack `(v, p)` asserts: positions `< p` hold keys `< v`, positions
//! `>= p` hold keys `>= v`. Pieces are the gaps between consecutive cracks.
//! Per-piece metadata carries the crack counters of selective stochastic
//! cracking (ScrackMon) and the in-flight partition jobs of progressive
//! cracking; metadata is inherited across piece splits via [`PieceMeta`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod avl;
mod flat;
mod index;
mod radix;

pub use avl::{AscIter, AvlTree, IdIter, NodeId};
pub use flat::{count_le, count_le_predicated, FlatAscIter, FlatIndex, FlatTripleIter, DELTA_CAP};
pub use index::{CrackIter, CrackerIndex, IndexPolicy, Piece, PieceIter, PieceMeta};
pub use radix::{RadixAscIter, RadixIndex, RadixTripleIter};
