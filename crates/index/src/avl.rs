//! An arena-based AVL tree keyed by crack value.
//!
//! Nodes live in a `Vec` arena and reference each other by index; removed
//! nodes go on a free list. Heights are maintained per node; the classic
//! single/double rotations keep the balance factor within ±1, so lookups,
//! predecessor/successor queries, inserts and removals are `O(log n)`.
//!
//! The tree deliberately exposes *handles* ([`NodeId`]) so that callers —
//! notably the Ripple update algorithm, which shifts crack positions one by
//! one — can mutate a node's position or metadata without re-searching.

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

/// A stable handle to an index entry, valid until that entry is removed.
///
/// Both representations of the cracker index hand these out: the AVL tree
/// ([`AvlTree`]) and the flat index ([`crate::FlatIndex`]) each back a
/// handle by an arena slot that never moves while the entry lives, so a
/// handle taken before an insert stays valid after it. A handle is only
/// meaningful to the structure that minted it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) u32);

#[derive(Debug, Clone)]
struct Node<M> {
    key: u64,
    pos: usize,
    meta: M,
    left: u32,
    right: u32,
    height: u8,
}

/// An AVL tree mapping `u64` keys to array positions plus metadata `M`.
#[derive(Debug, Clone)]
pub struct AvlTree<M> {
    nodes: Vec<Node<M>>,
    root: u32,
    free: Vec<u32>,
    len: usize,
}

impl<M> Default for AvlTree<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> AvlTree<M> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            root: NIL,
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    #[inline]
    fn node(&self, id: u32) -> &Node<M> {
        &self.nodes[id as usize]
    }

    #[inline]
    fn node_mut(&mut self, id: u32) -> &mut Node<M> {
        &mut self.nodes[id as usize]
    }

    /// Key of the entry behind `id`.
    pub fn key(&self, id: NodeId) -> u64 {
        self.node(id.0).key
    }

    /// Position of the entry behind `id`.
    pub fn pos(&self, id: NodeId) -> usize {
        self.node(id.0).pos
    }

    /// Overwrites the position of the entry behind `id`.
    ///
    /// Positions carry no ordering obligation inside the tree (only keys
    /// do), so this is safe structurally; the *cracker* invariant that
    /// positions are monotone in key order is the caller's to maintain.
    pub fn set_pos(&mut self, id: NodeId, pos: usize) {
        self.node_mut(id.0).pos = pos;
    }

    /// Metadata of the entry behind `id`.
    pub fn meta(&self, id: NodeId) -> &M {
        &self.node(id.0).meta
    }

    /// Mutable metadata of the entry behind `id`.
    pub fn meta_mut(&mut self, id: NodeId) -> &mut M {
        &mut self.node_mut(id.0).meta
    }

    fn height(&self, id: u32) -> i32 {
        if id == NIL {
            0
        } else {
            self.node(id).height as i32
        }
    }

    fn update_height(&mut self, id: u32) {
        let h = 1 + self
            .height(self.node(id).left)
            .max(self.height(self.node(id).right));
        self.node_mut(id).height = h as u8;
    }

    fn balance_factor(&self, id: u32) -> i32 {
        self.height(self.node(id).left) - self.height(self.node(id).right)
    }

    fn rotate_right(&mut self, y: u32) -> u32 {
        let x = self.node(y).left;
        let t2 = self.node(x).right;
        self.node_mut(x).right = y;
        self.node_mut(y).left = t2;
        self.update_height(y);
        self.update_height(x);
        x
    }

    fn rotate_left(&mut self, x: u32) -> u32 {
        let y = self.node(x).right;
        let t2 = self.node(y).left;
        self.node_mut(y).left = x;
        self.node_mut(x).right = t2;
        self.update_height(x);
        self.update_height(y);
        y
    }

    fn rebalance(&mut self, id: u32) -> u32 {
        self.update_height(id);
        let bf = self.balance_factor(id);
        if bf > 1 {
            if self.balance_factor(self.node(id).left) < 0 {
                let l = self.node(id).left;
                let nl = self.rotate_left(l);
                self.node_mut(id).left = nl;
            }
            self.rotate_right(id)
        } else if bf < -1 {
            if self.balance_factor(self.node(id).right) > 0 {
                let r = self.node(id).right;
                let nr = self.rotate_right(r);
                self.node_mut(id).right = nr;
            }
            self.rotate_left(id)
        } else {
            id
        }
    }

    fn alloc(&mut self, key: u64, pos: usize, meta: M) -> u32 {
        let node = Node {
            key,
            pos,
            meta,
            left: NIL,
            right: NIL,
            height: 1,
        };
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Inserts `(key, pos, meta)`.
    ///
    /// Returns `(id, true)` for a fresh entry, or `(existing_id, false)` if
    /// the key was already present (the existing entry is left untouched —
    /// a crack at an existing value is the same crack).
    pub fn insert(&mut self, key: u64, pos: usize, meta: M) -> (NodeId, bool) {
        if let Some(id) = self.find(key) {
            return (id, false);
        }
        let fresh = self.alloc(key, pos, meta);
        self.root = self.insert_rec(self.root, fresh, key);
        self.len += 1;
        (NodeId(fresh), true)
    }

    fn insert_rec(&mut self, at: u32, fresh: u32, key: u64) -> u32 {
        if at == NIL {
            return fresh;
        }
        if key < self.node(at).key {
            let nl = self.insert_rec(self.node(at).left, fresh, key);
            self.node_mut(at).left = nl;
        } else {
            debug_assert!(key > self.node(at).key, "duplicate checked by insert");
            let nr = self.insert_rec(self.node(at).right, fresh, key);
            self.node_mut(at).right = nr;
        }
        self.rebalance(at)
    }

    /// Looks up the entry with exactly `key`.
    pub fn find(&self, key: u64) -> Option<NodeId> {
        let mut cur = self.root;
        while cur != NIL {
            let n = self.node(cur);
            match key.cmp(&n.key) {
                std::cmp::Ordering::Less => cur = n.left,
                std::cmp::Ordering::Greater => cur = n.right,
                std::cmp::Ordering::Equal => return Some(NodeId(cur)),
            }
        }
        None
    }

    /// Greatest entry with key `<= key`.
    pub fn predecessor_or_equal(&self, key: u64) -> Option<NodeId> {
        let mut cur = self.root;
        let mut best = NIL;
        while cur != NIL {
            let n = self.node(cur);
            if n.key <= key {
                best = cur;
                cur = n.right;
            } else {
                cur = n.left;
            }
        }
        (best != NIL).then_some(NodeId(best))
    }

    /// Greatest entry with key `< key`.
    pub fn predecessor_strict(&self, key: u64) -> Option<NodeId> {
        if key == 0 {
            return None;
        }
        self.predecessor_or_equal(key - 1)
    }

    /// Smallest entry with key `> key`.
    pub fn successor_strict(&self, key: u64) -> Option<NodeId> {
        let mut cur = self.root;
        let mut best = NIL;
        while cur != NIL {
            let n = self.node(cur);
            if n.key > key {
                best = cur;
                cur = n.left;
            } else {
                cur = n.right;
            }
        }
        (best != NIL).then_some(NodeId(best))
    }

    /// Smallest entry with key `>= key`.
    pub fn successor_or_equal(&self, key: u64) -> Option<NodeId> {
        if key == 0 {
            return self.min();
        }
        self.successor_strict(key - 1)
    }

    /// Entry with the smallest key.
    pub fn min(&self) -> Option<NodeId> {
        let mut cur = self.root;
        if cur == NIL {
            return None;
        }
        while self.node(cur).left != NIL {
            cur = self.node(cur).left;
        }
        Some(NodeId(cur))
    }

    /// Entry with the greatest key.
    pub fn max(&self) -> Option<NodeId> {
        let mut cur = self.root;
        if cur == NIL {
            return None;
        }
        while self.node(cur).right != NIL {
            cur = self.node(cur).right;
        }
        Some(NodeId(cur))
    }

    /// Removes the entry with `key`, returning its `(pos, meta)`.
    pub fn remove(&mut self, key: u64) -> Option<(usize, M)>
    where
        M: Default,
    {
        self.find(key)?;
        let mut removed = NIL;
        self.root = self.remove_rec(self.root, key, &mut removed);
        debug_assert_ne!(removed, NIL);
        self.len -= 1;
        let node = &mut self.nodes[removed as usize];
        let pos = node.pos;
        let meta = std::mem::take(&mut node.meta);
        self.free.push(removed);
        Some((pos, meta))
    }

    fn remove_rec(&mut self, at: u32, key: u64, removed: &mut u32) -> u32 {
        if at == NIL {
            return NIL;
        }
        match key.cmp(&self.node(at).key) {
            std::cmp::Ordering::Less => {
                let nl = self.remove_rec(self.node(at).left, key, removed);
                self.node_mut(at).left = nl;
            }
            std::cmp::Ordering::Greater => {
                let nr = self.remove_rec(self.node(at).right, key, removed);
                self.node_mut(at).right = nr;
            }
            std::cmp::Ordering::Equal => {
                let (l, r) = (self.node(at).left, self.node(at).right);
                if l == NIL || r == NIL {
                    *removed = at;
                    return if l == NIL { r } else { l };
                }
                // Two children: splice out the in-order successor (min of
                // the right subtree) and move its payload into `at`; report
                // the spliced arena slot as the removed one.
                let mut succ = r;
                while self.node(succ).left != NIL {
                    succ = self.node(succ).left;
                }
                let succ_key = self.node(succ).key;
                let nr = self.remove_rec(r, succ_key, removed);
                debug_assert_eq!(*removed, succ);
                // Swap payloads so `at` carries the successor's entry and
                // the freed slot carries the deleted entry's payload.
                let (a, b) = if (at as usize) < (succ as usize) {
                    let (lo, hi) = self.nodes.split_at_mut(succ as usize);
                    (&mut lo[at as usize], &mut hi[0])
                } else {
                    let (lo, hi) = self.nodes.split_at_mut(at as usize);
                    (&mut hi[0], &mut lo[succ as usize])
                };
                std::mem::swap(&mut a.key, &mut b.key);
                std::mem::swap(&mut a.pos, &mut b.pos);
                std::mem::swap(&mut a.meta, &mut b.meta);
                self.node_mut(at).right = nr;
            }
        }
        self.rebalance(at)
    }

    /// In-order ascending iterator over `(key, pos)` pairs.
    pub fn iter_asc(&self) -> AscIter<'_, M> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL {
            stack.push(cur);
            cur = self.node(cur).left;
        }
        AscIter { tree: self, stack }
    }

    /// In-order ascending iterator over entry handles.
    ///
    /// The handle form of [`AvlTree::iter_asc`], for callers that need to
    /// carry entries around ([`crate::CrackerIndex`]'s piece iterator).
    /// Allocates its traversal stack (`O(log n)`); the flat representation
    /// iterates allocation-free.
    pub fn iter_ids(&self) -> IdIter<'_, M> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL {
            stack.push(cur);
            cur = self.node(cur).left;
        }
        IdIter { tree: self, stack }
    }

    /// Checks all AVL invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn walk<M>(
            t: &AvlTree<M>,
            id: u32,
            lo: Option<u64>,
            hi: Option<u64>,
            count: &mut usize,
        ) -> Result<i32, String> {
            if id == NIL {
                return Ok(0);
            }
            *count += 1;
            let n = t.node(id);
            if let Some(lo) = lo {
                if n.key <= lo {
                    return Err(format!("key {} violates lower bound {}", n.key, lo));
                }
            }
            if let Some(hi) = hi {
                if n.key >= hi {
                    return Err(format!("key {} violates upper bound {}", n.key, hi));
                }
            }
            let hl = walk(t, n.left, lo, Some(n.key), count)?;
            let hr = walk(t, n.right, Some(n.key), hi, count)?;
            if (hl - hr).abs() > 1 {
                return Err(format!("imbalance at key {}: {} vs {}", n.key, hl, hr));
            }
            let h = 1 + hl.max(hr);
            if h != n.height as i32 {
                return Err(format!("stale height at key {}", n.key));
            }
            Ok(h)
        }
        let mut count = 0usize;
        walk(self, self.root, None, None, &mut count)?;
        if count != self.len {
            return Err(format!("len {} but {} reachable nodes", self.len, count));
        }
        Ok(())
    }
}

/// Ascending in-order iterator, see [`AvlTree::iter_asc`].
pub struct AscIter<'a, M> {
    tree: &'a AvlTree<M>,
    stack: Vec<u32>,
}

impl<'a, M> Iterator for AscIter<'a, M> {
    type Item = (u64, usize, &'a M);

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.stack.pop()?;
        let n = self.tree.node(id);
        let mut cur = n.right;
        while cur != NIL {
            self.stack.push(cur);
            cur = self.tree.node(cur).left;
        }
        Some((n.key, n.pos, &n.meta))
    }
}

/// Ascending in-order handle iterator, see [`AvlTree::iter_ids`].
pub struct IdIter<'a, M> {
    tree: &'a AvlTree<M>,
    stack: Vec<u32>,
}

impl<M> Iterator for IdIter<'_, M> {
    type Item = NodeId;

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.stack.pop()?;
        let mut cur = self.tree.node(id).right;
        while cur != NIL {
            self.stack.push(cur);
            cur = self.tree.node(cur).left;
        }
        Some(NodeId(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn build(keys: &[u64]) -> AvlTree<u32> {
        let mut t = AvlTree::new();
        for (i, k) in keys.iter().enumerate() {
            t.insert(*k, i, i as u32);
        }
        t.check_invariants().unwrap();
        t
    }

    #[test]
    fn empty_tree_queries() {
        let t: AvlTree<()> = AvlTree::new();
        assert!(t.is_empty());
        assert!(t.find(5).is_none());
        assert!(t.predecessor_or_equal(5).is_none());
        assert!(t.successor_strict(5).is_none());
        assert!(t.min().is_none());
        assert!(t.max().is_none());
    }

    #[test]
    fn insert_dedupes_keys() {
        let mut t = AvlTree::new();
        let (a, fresh_a) = t.insert(10, 1, ());
        let (b, fresh_b) = t.insert(10, 99, ());
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(a, b);
        assert_eq!(t.pos(a), 1, "existing entry untouched");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ascending_insert_stays_balanced() {
        let t = build(&(0..1000).collect::<Vec<_>>());
        assert_eq!(t.len(), 1000);
        // AVL height bound: 1.44 * log2(n+2).
        assert!(t.height(t.root) <= 15, "height {}", t.height(t.root));
    }

    #[test]
    fn descending_insert_stays_balanced() {
        let t = build(&(0..1000).rev().collect::<Vec<_>>());
        assert!(t.height(t.root) <= 15);
    }

    #[test]
    fn neighbor_queries_match_btreemap() {
        let keys: Vec<u64> = (0..500).map(|i| (i * 977) % 1000).collect();
        let t = build(&keys);
        let model: BTreeMap<u64, ()> = keys.iter().map(|k| (*k, ())).collect();
        for probe in 0..1001 {
            let pred = t.predecessor_or_equal(probe).map(|id| t.key(id));
            let model_pred = model.range(..=probe).next_back().map(|(k, _)| *k);
            assert_eq!(pred, model_pred, "pred_or_eq({probe})");

            let succ = t.successor_strict(probe).map(|id| t.key(id));
            let model_succ = model
                .range((std::ops::Bound::Excluded(probe), std::ops::Bound::Unbounded))
                .next()
                .map(|(k, _)| *k);
            assert_eq!(succ, model_succ, "succ_strict({probe})");

            let spred = t.predecessor_strict(probe).map(|id| t.key(id));
            let model_spred = model.range(..probe).next_back().map(|(k, _)| *k);
            assert_eq!(spred, model_spred, "pred_strict({probe})");

            let seq = t.successor_or_equal(probe).map(|id| t.key(id));
            let model_seq = model.range(probe..).next().map(|(k, _)| *k);
            assert_eq!(seq, model_seq, "succ_or_eq({probe})");
        }
    }

    #[test]
    fn iter_asc_is_sorted_and_complete() {
        let keys: Vec<u64> = (0..300).map(|i| (i * 613) % 997).collect();
        let t = build(&keys);
        let got: Vec<u64> = t.iter_asc().map(|(k, _, _)| k).collect();
        let mut expect: Vec<u64> = keys.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(got, expect);
    }

    #[test]
    fn remove_keeps_balance_and_content() {
        let keys: Vec<u64> = (0..400).map(|i| (i * 31) % 401).collect();
        let mut t = build(&keys);
        let mut model: BTreeMap<u64, ()> = keys.iter().map(|k| (*k, ())).collect();
        for probe in (0..401).step_by(3) {
            let got = t.remove(probe).is_some();
            let expect = model.remove(&probe).is_some();
            assert_eq!(got, expect, "remove({probe})");
            t.check_invariants().unwrap();
        }
        let got: Vec<u64> = t.iter_asc().map(|(k, _, _)| k).collect();
        let expect: Vec<u64> = model.keys().copied().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn remove_reuses_arena_slots() {
        let mut t = AvlTree::new();
        for k in 0..100u64 {
            t.insert(k, 0, ());
        }
        let slots = t.nodes.len();
        for k in 0..50u64 {
            t.remove(k);
        }
        for k in 100..150u64 {
            t.insert(k, 0, ());
        }
        assert_eq!(t.nodes.len(), slots, "free list must recycle slots");
        t.check_invariants().unwrap();
    }

    #[test]
    fn set_pos_and_meta_via_handle() {
        let mut t = AvlTree::new();
        let (id, _) = t.insert(7, 3, 100u32);
        t.set_pos(id, 9);
        *t.meta_mut(id) += 1;
        assert_eq!(t.pos(id), 9);
        assert_eq!(*t.meta(id), 101);
        assert_eq!(t.key(id), 7);
    }

    #[test]
    fn min_max() {
        let t = build(&[50, 10, 90, 30, 70]);
        assert_eq!(t.key(t.min().unwrap()), 10);
        assert_eq!(t.key(t.max().unwrap()), 90);
    }

    #[test]
    fn predecessor_strict_at_zero() {
        let t = build(&[0, 5]);
        assert!(t.predecessor_strict(0).is_none());
        assert_eq!(t.key(t.successor_or_equal(0).unwrap()), 0);
    }

    #[test]
    fn clear_resets() {
        let mut t = build(&[1, 2, 3]);
        t.clear();
        assert!(t.is_empty());
        assert!(t.min().is_none());
        let (id, fresh) = t.insert(9, 0, 0);
        assert!(fresh);
        assert_eq!(t.key(id), 9);
    }
}
