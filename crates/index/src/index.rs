//! The piece-oriented cracker index, over a selectable representation.

use crate::avl::{AscIter, AvlTree, IdIter, NodeId};
use crate::flat::{FlatAscIter, FlatIndex, FlatTripleIter};
use crate::radix::{RadixAscIter, RadixIndex, RadixTripleIter};

/// Which physical representation a [`CrackerIndex`] runs on.
///
/// All representations expose the identical piece semantics and produce
/// bit-identical crack boundaries, piece metadata and engine `Stats` (a
/// contract pinned by the cross-policy property tests); the policy is a
/// pure wall-clock knob:
///
/// * [`IndexPolicy::Flat`] (the default) — two parallel sorted arrays
///   (`keys`, `pos`) plus an arena of per-crack metadata, searched with a
///   branch-free binary search. Lookups touch a handful of contiguous
///   cache lines; inserts shift array tails (`memmove` of dense words).
///   Fastest once cracking converges, which is exactly when index
///   navigation dominates per-query latency.
/// * [`IndexPolicy::Avl`] — the paper's AVL tree ("original cracking
///   uses AVL-trees", §3). `O(log n)` pointer-chasing everywhere; kept
///   as the reference representation for differential testing.
/// * [`IndexPolicy::Radix`] — a path-compressed 16-ary radix trie (after
///   the ART-cracking study of Wu et al.): `O(min(16, log16 n))` descent
///   bounded by the key length, so lookup cost stops growing with the
///   crack count, and handle dereferences are single arena loads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexPolicy {
    /// The arena-based AVL tree (the paper's structure).
    Avl,
    /// The cache-conscious flat sorted-array directory.
    #[default]
    Flat,
    /// The path-compressed radix trie (key-length-bounded descent).
    Radix,
}

impl IndexPolicy {
    /// The policy's CLI/report label.
    pub fn label(&self) -> &'static str {
        match self {
            IndexPolicy::Avl => "avl",
            IndexPolicy::Flat => "flat",
            IndexPolicy::Radix => "radix",
        }
    }

    /// Parses a CLI label (case-insensitive); `None` if unrecognized.
    pub fn parse(s: &str) -> Option<IndexPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "avl" => Some(IndexPolicy::Avl),
            "flat" => Some(IndexPolicy::Flat),
            "radix" => Some(IndexPolicy::Radix),
            _ => None,
        }
    }

    /// Every policy, for sweeps and differential tests.
    pub const ALL: [IndexPolicy; 3] = [IndexPolicy::Avl, IndexPolicy::Flat, IndexPolicy::Radix];
}

impl std::fmt::Display for IndexPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-piece metadata that survives piece splits.
///
/// When a crack splits a piece, the paper's monitoring variant requires the
/// new piece to "inherit the counter from its parent piece" (§4,
/// ScrackMon). [`PieceMeta::inherit`] defines what is copied: counters are,
/// in-flight progressive partition jobs are **not** (a job belongs to the
/// exact piece it was created for).
pub trait PieceMeta: Default {
    /// Metadata for a child piece created by splitting the piece owning
    /// `self`.
    fn inherit(&self) -> Self;
}

impl PieceMeta for () {
    fn inherit(&self) {}
}

/// A contiguous region of the cracked column and its key bounds.
///
/// The piece spans positions `[start, end)`. Its keys `k` satisfy
/// `lo_key <= k < hi_key`, where `None` bounds mean "unbounded" (the first
/// and last pieces). `left_crack`/`right_crack` are the index entries that
/// delimit the piece, when they exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Piece {
    /// First position of the piece.
    pub start: usize,
    /// One past the last position of the piece.
    pub end: usize,
    /// Greatest crack value `<=` every key in the piece (`None` for the
    /// leftmost piece).
    pub lo_key: Option<u64>,
    /// Smallest crack value `>` every key in the piece (`None` for the
    /// rightmost piece).
    pub hi_key: Option<u64>,
    /// Handle of the crack at `start`, if any.
    pub left_crack: Option<NodeId>,
    /// Handle of the crack at `end`, if any.
    pub right_crack: Option<NodeId>,
}

impl Piece {
    /// Number of elements in the piece.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the piece holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// The physical representation behind a [`CrackerIndex`].
#[derive(Debug, Clone)]
enum Repr<M> {
    Avl(AvlTree<M>),
    Flat(FlatIndex<M>),
    Radix(RadixIndex<M>),
}

/// The cracker index: crack values mapped to positions, seen as pieces.
///
/// Generic over per-piece metadata `M`; the plain engines use `()`,
/// stochastic engines use counters/jobs (defined in `scrack-core`). The
/// representation is chosen at construction via [`IndexPolicy`]
/// ([`CrackerIndex::with_policy`]; [`CrackerIndex::new`] takes the
/// default, [`IndexPolicy::Flat`]) and is invisible to callers: every
/// method below behaves identically under both.
///
/// ```
/// use scrack_index::{CrackerIndex, IndexPolicy};
///
/// // A 100-element column cracked at keys 50 (position 48) and 80 (75).
/// let mut idx: CrackerIndex<()> = CrackerIndex::new(100);
/// idx.add_crack(50, 48);
/// idx.add_crack(80, 75);
///
/// let piece = idx.piece_containing(60);
/// assert_eq!((piece.start, piece.end), (48, 75));
/// assert_eq!((piece.lo_key, piece.hi_key), (Some(50), Some(80)));
/// assert_eq!(idx.piece_count(), 3);
/// assert_eq!(idx.policy(), IndexPolicy::Flat);
/// ```
#[derive(Debug, Clone)]
pub struct CrackerIndex<M: PieceMeta> {
    repr: Repr<M>,
    column_len: usize,
    /// Metadata of the leftmost piece, which has no left crack to hang it on.
    head_meta: M,
}

impl<M: PieceMeta> Default for CrackerIndex<M> {
    fn default() -> Self {
        Self::new(0)
    }
}

impl<M: PieceMeta> CrackerIndex<M> {
    /// An index over an uncracked column of `column_len` elements (a
    /// single piece spanning everything) on the default representation.
    pub fn new(column_len: usize) -> Self {
        Self::with_policy(column_len, IndexPolicy::default())
    }

    /// An index on an explicitly chosen representation.
    pub fn with_policy(column_len: usize, policy: IndexPolicy) -> Self {
        let repr = match policy {
            IndexPolicy::Avl => Repr::Avl(AvlTree::new()),
            IndexPolicy::Flat => Repr::Flat(FlatIndex::new()),
            IndexPolicy::Radix => Repr::Radix(RadixIndex::new()),
        };
        Self {
            repr,
            column_len,
            head_meta: M::default(),
        }
    }

    /// The representation this index runs on.
    pub fn policy(&self) -> IndexPolicy {
        match &self.repr {
            Repr::Avl(_) => IndexPolicy::Avl,
            Repr::Flat(_) => IndexPolicy::Flat,
            Repr::Radix(_) => IndexPolicy::Radix,
        }
    }

    /// Number of cracks.
    #[inline]
    pub fn crack_count(&self) -> usize {
        match &self.repr {
            Repr::Avl(t) => t.len(),
            Repr::Flat(f) => f.len(),
            Repr::Radix(r) => r.len(),
        }
    }

    /// Number of pieces (always `crack_count() + 1`).
    #[inline]
    pub fn piece_count(&self) -> usize {
        self.crack_count() + 1
    }

    /// Length of the indexed column.
    #[inline]
    pub fn column_len(&self) -> usize {
        self.column_len
    }

    /// Adjusts the column length (used by updates when tuples are inserted
    /// or deleted at the physical end of the array).
    pub fn set_column_len(&mut self, len: usize) {
        self.column_len = len;
    }

    /// Drops all cracks, returning to the single-piece state (the
    /// representation is kept).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Avl(t) => t.clear(),
            Repr::Flat(f) => f.clear(),
            Repr::Radix(r) => r.clear(),
        }
        self.head_meta = M::default();
    }

    /// The piece whose key range contains `key`.
    ///
    /// The flat representation resolves both piece edges from one
    /// lower-bound search per array level; the AVL representation
    /// performs the paper's two tree walks (`predecessor_or_equal` +
    /// `successor_strict`). Identical results by construction.
    #[inline]
    pub fn piece_containing(&self, key: u64) -> Piece {
        let piece = match &self.repr {
            Repr::Avl(t) => {
                let pred = t.predecessor_or_equal(key);
                let succ = t.successor_strict(key);
                Piece {
                    start: pred.map_or(0, |id| t.pos(id)),
                    end: succ.map_or(self.column_len, |id| t.pos(id)),
                    lo_key: pred.map(|id| t.key(id)),
                    hi_key: succ.map(|id| t.key(id)),
                    left_crack: pred,
                    right_crack: succ,
                }
            }
            Repr::Flat(f) => {
                let (pred, succ) = f.neighbors(key);
                Piece {
                    start: pred.map_or(0, |(_, p, _)| p),
                    end: succ.map_or(self.column_len, |(_, p, _)| p),
                    lo_key: pred.map(|(k, _, _)| k),
                    hi_key: succ.map(|(k, _, _)| k),
                    left_crack: pred.map(|(_, _, id)| id),
                    right_crack: succ.map(|(_, _, id)| id),
                }
            }
            Repr::Radix(r) => {
                let (pred, succ) = r.neighbors(key);
                Piece {
                    start: pred.map_or(0, |(_, p, _)| p),
                    end: succ.map_or(self.column_len, |(_, p, _)| p),
                    lo_key: pred.map(|(k, _, _)| k),
                    hi_key: succ.map(|(k, _, _)| k),
                    left_crack: pred.map(|(_, _, id)| id),
                    right_crack: succ.map(|(_, _, id)| id),
                }
            }
        };
        // O(1) sanity only — the O(n) monotonicity walk must never run
        // here, even in debug builds (this is the hottest index path).
        debug_assert!(piece.start <= piece.end, "piece bounds inverted");
        debug_assert!(piece.end <= self.column_len, "piece beyond column");
        piece
    }

    /// Registers the crack `(key, pos)`: positions `< pos` hold keys
    /// `< key`, positions `>= pos` hold keys `>= key`.
    ///
    /// The new right-hand piece inherits metadata from the piece being
    /// split. Returns the crack's handle; inserting a crack at an existing
    /// value is a no-op returning the existing handle.
    #[inline]
    pub fn add_crack(&mut self, key: u64, pos: usize) -> NodeId {
        debug_assert!(pos <= self.column_len);
        // Inherit from the piece that `key` currently falls in.
        let parent_meta = match self.crack_at_or_before(key) {
            Some(id) => self.crack_meta(id).inherit(),
            None => self.head_meta.inherit(),
        };
        let (id, fresh) = match &mut self.repr {
            Repr::Avl(t) => t.insert(key, pos, parent_meta),
            Repr::Flat(f) => f.insert(key, pos, parent_meta),
            Repr::Radix(r) => r.insert(key, pos, parent_meta),
        };
        if fresh {
            // O(1) neighbor check (not the O(n) full walk): the fresh
            // crack must sit between its neighbors' positions.
            debug_assert!(
                self.crack_before(key).is_none_or(|p| self.crack_pos(p) <= pos)
                    && self.crack_after(key).is_none_or(|s| pos <= self.crack_pos(s)),
                "crack ({key},{pos}) broke position monotonicity"
            );
        } else {
            debug_assert_eq!(
                self.crack_pos(id),
                pos,
                "crack at existing value {key} must agree on position"
            );
        }
        id
    }

    /// Metadata of `piece` (its left crack's, or the head metadata).
    #[inline]
    pub fn piece_meta(&self, piece: &Piece) -> &M {
        match piece.left_crack {
            Some(id) => self.crack_meta(id),
            None => &self.head_meta,
        }
    }

    /// Mutable metadata of `piece`.
    #[inline]
    pub fn piece_meta_mut(&mut self, piece: &Piece) -> &mut M {
        match piece.left_crack {
            Some(id) => self.crack_meta_mut(id),
            None => &mut self.head_meta,
        }
    }

    // ------------------------------------------------------------------
    // Handle-oriented access (representation-agnostic; used by the
    // Ripple update path, which shifts crack positions through handles)
    // ------------------------------------------------------------------

    /// Key of the crack behind `id`.
    #[inline]
    pub fn crack_key(&self, id: NodeId) -> u64 {
        match &self.repr {
            Repr::Avl(t) => t.key(id),
            Repr::Flat(f) => f.key(id),
            Repr::Radix(r) => r.key(id),
        }
    }

    /// Position of the crack behind `id`.
    #[inline]
    pub fn crack_pos(&self, id: NodeId) -> usize {
        match &self.repr {
            Repr::Avl(t) => t.pos(id),
            Repr::Flat(f) => f.pos(id),
            Repr::Radix(r) => r.pos(id),
        }
    }

    /// Overwrites the position of the crack behind `id`.
    ///
    /// Positions carry no ordering obligation inside the index (only keys
    /// do); the cracker invariant that positions are monotone in key
    /// order is the caller's to maintain (Ripple shifts them in lockstep
    /// with element moves).
    #[inline]
    pub fn set_crack_pos(&mut self, id: NodeId, pos: usize) {
        match &mut self.repr {
            Repr::Avl(t) => t.set_pos(id, pos),
            Repr::Flat(f) => f.set_pos(id, pos),
            Repr::Radix(r) => r.set_pos(id, pos),
        }
    }

    /// Metadata of the crack behind `id` (i.e. of its right-hand piece).
    #[inline]
    pub fn crack_meta(&self, id: NodeId) -> &M {
        match &self.repr {
            Repr::Avl(t) => t.meta(id),
            Repr::Flat(f) => f.meta(id),
            Repr::Radix(r) => r.meta(id),
        }
    }

    /// Mutable metadata of the crack behind `id`.
    #[inline]
    pub fn crack_meta_mut(&mut self, id: NodeId) -> &mut M {
        match &mut self.repr {
            Repr::Avl(t) => t.meta_mut(id),
            Repr::Flat(f) => f.meta_mut(id),
            Repr::Radix(r) => r.meta_mut(id),
        }
    }

    /// The crack at exactly `key`, if one exists.
    #[inline]
    pub fn find_crack(&self, key: u64) -> Option<NodeId> {
        match &self.repr {
            Repr::Avl(t) => t.find(key),
            Repr::Flat(f) => f.find(key),
            Repr::Radix(r) => r.find(key),
        }
    }

    /// Greatest crack with value `<= key`.
    #[inline]
    pub fn crack_at_or_before(&self, key: u64) -> Option<NodeId> {
        match &self.repr {
            Repr::Avl(t) => t.predecessor_or_equal(key),
            Repr::Flat(f) => f.predecessor_or_equal(key),
            Repr::Radix(r) => r.predecessor_or_equal(key),
        }
    }

    /// Greatest crack with value `< key`.
    #[inline]
    pub fn crack_before(&self, key: u64) -> Option<NodeId> {
        match &self.repr {
            Repr::Avl(t) => t.predecessor_strict(key),
            Repr::Flat(f) => f.predecessor_strict(key),
            Repr::Radix(r) => r.predecessor_strict(key),
        }
    }

    /// Smallest crack with value `> key`.
    #[inline]
    pub fn crack_after(&self, key: u64) -> Option<NodeId> {
        match &self.repr {
            Repr::Avl(t) => t.successor_strict(key),
            Repr::Flat(f) => f.successor_strict(key),
            Repr::Radix(r) => r.successor_strict(key),
        }
    }

    /// The crack with the smallest value.
    #[inline]
    pub fn min_crack(&self) -> Option<NodeId> {
        match &self.repr {
            Repr::Avl(t) => t.min(),
            Repr::Flat(f) => f.min(),
            Repr::Radix(r) => r.min(),
        }
    }

    /// The crack with the greatest value.
    #[inline]
    pub fn max_crack(&self) -> Option<NodeId> {
        match &self.repr {
            Repr::Avl(t) => t.max(),
            Repr::Flat(f) => f.max(),
            Repr::Radix(r) => r.max(),
        }
    }

    // ------------------------------------------------------------------
    // Iteration
    // ------------------------------------------------------------------

    /// Ascending iterator over `(crack_value, position, &meta)` triples.
    pub fn iter_cracks(&self) -> CrackIter<'_, M> {
        CrackIter {
            inner: match &self.repr {
                Repr::Avl(t) => CrackIterRepr::Avl(t.iter_asc()),
                Repr::Flat(f) => CrackIterRepr::Flat(f.iter_asc()),
                Repr::Radix(r) => CrackIterRepr::Radix(r.iter_asc()),
            },
        }
    }

    /// All pieces in position order, without allocating the piece list.
    ///
    /// This is the hot-path replacement for [`CrackerIndex::pieces`]: the
    /// flat representation iterates with a two-cursor merge over its
    /// arrays (zero allocation), the AVL representation with its
    /// in-order traversal (one `O(log n)` stack allocation for the whole
    /// iteration).
    pub fn iter_pieces(&self) -> PieceIter<'_, M> {
        PieceIter {
            cracks: match &self.repr {
                Repr::Avl(t) => TripleIter::Avl(t, t.iter_ids()),
                Repr::Flat(f) => TripleIter::Flat(f.iter_triples()),
                Repr::Radix(r) => TripleIter::Radix(r.iter_triples()),
            },
            column_len: self.column_len,
            prev: None,
            done: false,
        }
    }

    /// All pieces in position order, as an owned `Vec`. Allocates;
    /// convenience for inspection and tests — hot paths use
    /// [`CrackerIndex::iter_pieces`].
    pub fn pieces(&self) -> Vec<Piece> {
        self.iter_pieces().collect()
    }

    /// The crack directory as two parallel sorted arrays
    /// `(crack_keys, crack_positions)`, ascending in key.
    ///
    /// This is the export used by snapshot publication (the epoch-style
    /// read path of `scrack-parallel`): an immutable copy of exactly the
    /// metadata a reader needs to resolve a view — binary-searchable,
    /// representation-independent, and detached from the live index so
    /// later cracks cannot invalidate it.
    pub fn crack_arrays(&self) -> (Vec<u64>, Vec<usize>) {
        let n = self.crack_count();
        let (mut keys, mut positions) = (Vec::with_capacity(n), Vec::with_capacity(n));
        for (key, pos, _) in self.iter_cracks() {
            keys.push(key);
            positions.push(pos);
        }
        (keys, positions)
    }

    /// Whether crack positions are non-decreasing in key order and within
    /// the column bounds.
    pub fn check_positions_monotone(&self) -> bool {
        let mut prev = 0usize;
        for (_, pos, _) in self.iter_cracks() {
            if pos < prev || pos > self.column_len {
                return false;
            }
            prev = pos;
        }
        true
    }
}

enum CrackIterRepr<'a, M> {
    Avl(AscIter<'a, M>),
    Flat(FlatAscIter<'a, M>),
    Radix(RadixAscIter<'a, M>),
}

/// Ascending crack iterator, see [`CrackerIndex::iter_cracks`].
pub struct CrackIter<'a, M> {
    inner: CrackIterRepr<'a, M>,
}

impl<'a, M> Iterator for CrackIter<'a, M> {
    type Item = (u64, usize, &'a M);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            CrackIterRepr::Avl(it) => it.next(),
            CrackIterRepr::Flat(it) => it.next(),
            CrackIterRepr::Radix(it) => it.next(),
        }
    }
}

/// Handle/key/pos stream over either representation, in key order.
enum TripleIter<'a, M> {
    Avl(&'a AvlTree<M>, IdIter<'a, M>),
    Flat(FlatTripleIter<'a, M>),
    Radix(RadixTripleIter<'a, M>),
}

impl<M> TripleIter<'_, M> {
    fn next_triple(&mut self) -> Option<(u64, usize, NodeId)> {
        match self {
            TripleIter::Avl(tree, ids) => {
                let id = ids.next()?;
                Some((tree.key(id), tree.pos(id), id))
            }
            TripleIter::Flat(triples) => triples.next(),
            TripleIter::Radix(triples) => triples.next(),
        }
    }
}

/// Borrowing piece iterator, see [`CrackerIndex::iter_pieces`].
pub struct PieceIter<'a, M> {
    cracks: TripleIter<'a, M>,
    column_len: usize,
    prev: Option<(u64, usize, NodeId)>,
    done: bool,
}

impl<M> Iterator for PieceIter<'_, M> {
    type Item = Piece;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let (start, lo_key, left) = match self.prev {
            Some((k, p, id)) => (p, Some(k), Some(id)),
            None => (0, None, None),
        };
        match self.cracks.next_triple() {
            Some((k, p, id)) => {
                self.prev = Some((k, p, id));
                Some(Piece {
                    start,
                    end: p,
                    lo_key,
                    hi_key: Some(k),
                    left_crack: left,
                    right_crack: Some(id),
                })
            }
            None => {
                self.done = true;
                Some(Piece {
                    start,
                    end: self.column_len,
                    lo_key,
                    hi_key: None,
                    left_crack: left,
                    right_crack: None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncracked_column_is_one_piece() {
        let idx: CrackerIndex<()> = CrackerIndex::new(100);
        assert_eq!(idx.piece_count(), 1);
        let p = idx.piece_containing(42);
        assert_eq!((p.start, p.end), (0, 100));
        assert_eq!(p.lo_key, None);
        assert_eq!(p.hi_key, None);
        assert!(p.left_crack.is_none() && p.right_crack.is_none());
    }

    #[test]
    fn piece_lookup_after_cracks_both_policies() {
        for policy in IndexPolicy::ALL {
            let mut idx: CrackerIndex<()> = CrackerIndex::with_policy(100, policy);
            assert_eq!(idx.policy(), policy);
            idx.add_crack(50, 48);
            idx.add_crack(80, 75);
            assert_eq!(idx.piece_count(), 3);

            let p = idx.piece_containing(10);
            assert_eq!((p.start, p.end), (0, 48), "{policy}");
            assert_eq!((p.lo_key, p.hi_key), (None, Some(50)));

            // Key equal to a crack value belongs to the right-hand piece.
            let p = idx.piece_containing(50);
            assert_eq!((p.start, p.end), (48, 75), "{policy}");
            assert_eq!((p.lo_key, p.hi_key), (Some(50), Some(80)));

            let p = idx.piece_containing(79);
            assert_eq!((p.start, p.end), (48, 75), "{policy}");

            let p = idx.piece_containing(99);
            assert_eq!((p.start, p.end), (75, 100), "{policy}");
            assert_eq!((p.lo_key, p.hi_key), (Some(80), None));
        }
    }

    #[test]
    fn add_crack_at_existing_value_is_noop() {
        for policy in IndexPolicy::ALL {
            let mut idx: CrackerIndex<()> = CrackerIndex::with_policy(100, policy);
            let a = idx.add_crack(50, 48);
            let b = idx.add_crack(50, 48);
            assert_eq!(a, b, "{policy}");
            assert_eq!(idx.crack_count(), 1);
        }
    }

    #[test]
    fn policy_labels_parse_and_default() {
        assert_eq!(IndexPolicy::default(), IndexPolicy::Flat);
        for p in IndexPolicy::ALL {
            assert_eq!(IndexPolicy::parse(p.label()), Some(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(IndexPolicy::parse("AVL"), Some(IndexPolicy::Avl));
        assert_eq!(IndexPolicy::parse("btree"), None);
        let d: CrackerIndex<()> = CrackerIndex::default();
        assert_eq!(d.policy(), IndexPolicy::Flat);
        assert_eq!(d.column_len(), 0);
    }

    #[derive(Default, Debug, Clone, PartialEq)]
    struct Counter {
        count: u32,
        job: Option<&'static str>,
    }

    impl PieceMeta for Counter {
        fn inherit(&self) -> Self {
            Counter {
                count: self.count,
                job: None, // jobs never survive a split
            }
        }
    }

    #[test]
    fn meta_is_inherited_on_split_without_jobs() {
        for policy in IndexPolicy::ALL {
            let mut idx: CrackerIndex<Counter> = CrackerIndex::with_policy(100, policy);
            // Put state on the head piece.
            let head = idx.piece_containing(0);
            *idx.piece_meta_mut(&head) = Counter {
                count: 7,
                job: Some("active"),
            };
            // Splitting it inherits the counter but not the job.
            idx.add_crack(50, 50);
            let left = idx.piece_containing(0);
            let right = idx.piece_containing(60);
            assert_eq!(idx.piece_meta(&left).count, 7, "{policy}");
            assert_eq!(
                idx.piece_meta(&left).job,
                Some("active"),
                "{policy}: parent keeps its job"
            );
            assert_eq!(
                idx.piece_meta(&right).count,
                7,
                "{policy}: child inherits counter"
            );
            assert_eq!(
                idx.piece_meta(&right).job,
                None,
                "{policy}: child must not inherit job"
            );
        }
    }

    #[test]
    fn handles_survive_later_inserts() {
        // The stability contract piece metadata access relies on: a piece
        // handle taken before cracks land elsewhere must stay valid.
        for policy in IndexPolicy::ALL {
            let mut idx: CrackerIndex<Counter> = CrackerIndex::with_policy(1000, policy);
            let id = idx.add_crack(500, 480);
            idx.crack_meta_mut(id).count = 3;
            for (k, p) in [(100u64, 90usize), (900, 910), (300, 280), (700, 690)] {
                idx.add_crack(k, p);
            }
            assert_eq!(idx.crack_key(id), 500, "{policy}");
            assert_eq!(idx.crack_pos(id), 480, "{policy}");
            assert_eq!(idx.crack_meta(id).count, 3, "{policy}");
        }
    }

    #[test]
    fn pieces_enumeration_covers_column() {
        for policy in IndexPolicy::ALL {
            let mut idx: CrackerIndex<()> = CrackerIndex::with_policy(1000, policy);
            for (k, p) in [(100u64, 90usize), (500, 520), (900, 905), (300, 280)] {
                idx.add_crack(k, p);
            }
            let pieces = idx.pieces();
            assert_eq!(pieces.len(), 5, "{policy}");
            assert_eq!(pieces[0].start, 0);
            assert_eq!(pieces.last().unwrap().end, 1000);
            for w in pieces.windows(2) {
                assert_eq!(w[0].end, w[1].start, "{policy}: pieces must tile");
                assert_eq!(w[0].hi_key, w[1].lo_key, "{policy}");
            }
            // iter_pieces agrees with the collected form item for item.
            let iterated: Vec<Piece> = idx.iter_pieces().collect();
            assert_eq!(iterated, pieces, "{policy}");
            assert_eq!(idx.iter_pieces().count(), idx.piece_count(), "{policy}");
        }
    }

    #[test]
    fn positions_monotonicity_check() {
        for policy in IndexPolicy::ALL {
            let mut idx: CrackerIndex<()> = CrackerIndex::with_policy(100, policy);
            idx.add_crack(10, 20);
            idx.add_crack(20, 40);
            assert!(idx.check_positions_monotone(), "{policy}");
            // Force a violation through the raw handle.
            let id = idx.find_crack(20).unwrap();
            idx.set_crack_pos(id, 5);
            assert!(!idx.check_positions_monotone(), "{policy}");
        }
    }

    #[test]
    fn handle_navigation_walks_cracks_in_both_directions() {
        for policy in IndexPolicy::ALL {
            let mut idx: CrackerIndex<()> = CrackerIndex::with_policy(100, policy);
            for (k, p) in [(10u64, 10usize), (30, 30), (60, 60)] {
                idx.add_crack(k, p);
            }
            // Right-to-left, as ripple_insert walks.
            let mut keys = Vec::new();
            let mut cur = idx.max_crack();
            while let Some(id) = cur {
                keys.push(idx.crack_key(id));
                cur = idx.crack_before(idx.crack_key(id));
            }
            assert_eq!(keys, vec![60, 30, 10], "{policy}");
            // Left-to-right, as ripple_delete walks.
            let mut keys = Vec::new();
            let mut cur = idx.crack_after(0);
            while let Some(id) = cur {
                keys.push(idx.crack_key(id));
                cur = idx.crack_after(idx.crack_key(id));
            }
            assert_eq!(keys, vec![10, 30, 60], "{policy}");
            assert_eq!(idx.min_crack().map(|id| idx.crack_key(id)), Some(10));
            assert_eq!(idx.crack_at_or_before(30).map(|id| idx.crack_key(id)), Some(30));
        }
    }

    #[test]
    fn empty_pieces_are_representable() {
        for policy in IndexPolicy::ALL {
            let mut idx: CrackerIndex<()> = CrackerIndex::with_policy(100, policy);
            idx.add_crack(10, 30);
            idx.add_crack(20, 30); // nothing between keys 10 and 20
            let p = idx.piece_containing(15);
            assert!(p.is_empty(), "{policy}");
            assert_eq!(p.len(), 0);
            assert_eq!((p.start, p.end), (30, 30));
        }
    }

    #[test]
    fn clear_returns_to_single_piece_keeping_policy() {
        for policy in IndexPolicy::ALL {
            let mut idx: CrackerIndex<()> = CrackerIndex::with_policy(100, policy);
            idx.add_crack(10, 30);
            idx.clear();
            assert_eq!(idx.piece_count(), 1, "{policy}");
            assert_eq!(idx.policy(), policy);
            let p = idx.piece_containing(10);
            assert_eq!((p.start, p.end), (0, 100));
        }
    }

    #[test]
    fn column_len_resize() {
        let mut idx: CrackerIndex<()> = CrackerIndex::new(100);
        idx.add_crack(10, 30);
        idx.set_column_len(101);
        let p = idx.piece_containing(50);
        assert_eq!(p.end, 101);
    }

    #[test]
    fn cross_policy_piece_equivalence_on_random_cracks() {
        // The structural core of the cross-policy contract, three-way:
        // identical cracks in, identical pieces out — for every probe
        // key, under every representation.
        let mut indexes: Vec<CrackerIndex<()>> = IndexPolicy::ALL
            .iter()
            .map(|p| CrackerIndex::with_policy(10_000, *p))
            .collect();
        // A valid crack set: positions monotone in *key* order, then
        // inserted in shuffled order (as real cracking interleaves).
        let mut state = 0x9E37_79B9u64;
        let mut keys: Vec<u64> = (0..200)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % 10_000
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let mut cracks: Vec<(u64, usize)> = keys
            .iter()
            .map(|k| (*k, ((*k as usize * 9) / 10).min(10_000)))
            .collect();
        for i in (1..cracks.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            cracks.swap(i, (state % (i as u64 + 1)) as usize);
        }
        for (k, p) in &cracks {
            for idx in &mut indexes {
                idx.add_crack(*k, *p);
            }
        }
        let reference = &indexes[0];
        let ref_cracks: Vec<(u64, usize)> =
            reference.iter_cracks().map(|(k, p, _)| (k, p)).collect();
        for other in &indexes[1..] {
            assert_eq!(reference.crack_count(), other.crack_count());
            let cracks: Vec<(u64, usize)> =
                other.iter_cracks().map(|(k, p, _)| (k, p)).collect();
            assert_eq!(
                ref_cracks,
                cracks,
                "{}: crack lists must be identical",
                other.policy()
            );
            for probe in (0..11_000).step_by(7) {
                let pr = reference.piece_containing(probe);
                let po = other.piece_containing(probe);
                assert_eq!(
                    (pr.start, pr.end, pr.lo_key, pr.hi_key),
                    (po.start, po.end, po.lo_key, po.hi_key),
                    "{}: probe {probe}",
                    other.policy()
                );
            }
            let pieces_r: Vec<(usize, usize)> =
                reference.iter_pieces().map(|p| (p.start, p.end)).collect();
            let pieces_o: Vec<(usize, usize)> =
                other.iter_pieces().map(|p| (p.start, p.end)).collect();
            assert_eq!(pieces_r, pieces_o, "{}", other.policy());
        }
    }
}
