//! The piece-oriented cracker index on top of the AVL tree.

use crate::avl::{AvlTree, NodeId};

/// Per-piece metadata that survives piece splits.
///
/// When a crack splits a piece, the paper's monitoring variant requires the
/// new piece to "inherit the counter from its parent piece" (§4,
/// ScrackMon). [`PieceMeta::inherit`] defines what is copied: counters are,
/// in-flight progressive partition jobs are **not** (a job belongs to the
/// exact piece it was created for).
pub trait PieceMeta: Default {
    /// Metadata for a child piece created by splitting the piece owning
    /// `self`.
    fn inherit(&self) -> Self;
}

impl PieceMeta for () {
    fn inherit(&self) {}
}

/// A contiguous region of the cracked column and its key bounds.
///
/// The piece spans positions `[start, end)`. Its keys `k` satisfy
/// `lo_key <= k < hi_key`, where `None` bounds mean "unbounded" (the first
/// and last pieces). `left_crack`/`right_crack` are the index entries that
/// delimit the piece, when they exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Piece {
    /// First position of the piece.
    pub start: usize,
    /// One past the last position of the piece.
    pub end: usize,
    /// Greatest crack value `<=` every key in the piece (`None` for the
    /// leftmost piece).
    pub lo_key: Option<u64>,
    /// Smallest crack value `>` every key in the piece (`None` for the
    /// rightmost piece).
    pub hi_key: Option<u64>,
    /// Handle of the crack at `start`, if any.
    pub left_crack: Option<NodeId>,
    /// Handle of the crack at `end`, if any.
    pub right_crack: Option<NodeId>,
}

impl Piece {
    /// Number of elements in the piece.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the piece holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// The cracker index: crack values mapped to positions, seen as pieces.
///
/// Generic over per-piece metadata `M`; the plain engines use `()`,
/// stochastic engines use counters/jobs (defined in `scrack-core`).
///
/// ```
/// use scrack_index::CrackerIndex;
///
/// // A 100-element column cracked at keys 50 (position 48) and 80 (75).
/// let mut idx: CrackerIndex<()> = CrackerIndex::new(100);
/// idx.add_crack(50, 48);
/// idx.add_crack(80, 75);
///
/// let piece = idx.piece_containing(60);
/// assert_eq!((piece.start, piece.end), (48, 75));
/// assert_eq!((piece.lo_key, piece.hi_key), (Some(50), Some(80)));
/// assert_eq!(idx.piece_count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CrackerIndex<M: PieceMeta> {
    tree: AvlTree<M>,
    column_len: usize,
    /// Metadata of the leftmost piece, which has no left crack to hang it on.
    head_meta: M,
}

impl<M: PieceMeta> CrackerIndex<M> {
    /// An index over an uncracked column of `column_len` elements: a single
    /// piece spanning everything.
    pub fn new(column_len: usize) -> Self {
        Self {
            tree: AvlTree::new(),
            column_len,
            head_meta: M::default(),
        }
    }

    /// Number of cracks.
    pub fn crack_count(&self) -> usize {
        self.tree.len()
    }

    /// Number of pieces (always `crack_count() + 1`).
    pub fn piece_count(&self) -> usize {
        self.tree.len() + 1
    }

    /// Length of the indexed column.
    pub fn column_len(&self) -> usize {
        self.column_len
    }

    /// Adjusts the column length (used by updates when tuples are inserted
    /// or deleted at the physical end of the array).
    pub fn set_column_len(&mut self, len: usize) {
        self.column_len = len;
    }

    /// Drops all cracks, returning to the single-piece state.
    pub fn clear(&mut self) {
        self.tree.clear();
        self.head_meta = M::default();
    }

    /// The piece whose key range contains `key`.
    pub fn piece_containing(&self, key: u64) -> Piece {
        let pred = self.tree.predecessor_or_equal(key);
        let succ = self.tree.successor_strict(key);
        Piece {
            start: pred.map_or(0, |id| self.tree.pos(id)),
            end: succ.map_or(self.column_len, |id| self.tree.pos(id)),
            lo_key: pred.map(|id| self.tree.key(id)),
            hi_key: succ.map(|id| self.tree.key(id)),
            left_crack: pred,
            right_crack: succ,
        }
    }

    /// Registers the crack `(key, pos)`: positions `< pos` hold keys
    /// `< key`, positions `>= pos` hold keys `>= key`.
    ///
    /// The new right-hand piece inherits metadata from the piece being
    /// split. Returns the crack's handle; inserting a crack at an existing
    /// value is a no-op returning the existing handle.
    pub fn add_crack(&mut self, key: u64, pos: usize) -> NodeId {
        debug_assert!(pos <= self.column_len);
        // Inherit from the piece that `key` currently falls in.
        let parent_meta = match self.tree.predecessor_or_equal(key) {
            Some(id) => self.tree.meta(id).inherit(),
            None => self.head_meta.inherit(),
        };
        let (id, fresh) = self.tree.insert(key, pos, parent_meta);
        if fresh {
            debug_assert!(
                self.check_positions_monotone(),
                "crack ({key},{pos}) broke position monotonicity"
            );
        } else {
            debug_assert_eq!(
                self.tree.pos(id),
                pos,
                "crack at existing value {key} must agree on position"
            );
        }
        id
    }

    /// Metadata of `piece` (its left crack's, or the head metadata).
    pub fn piece_meta(&self, piece: &Piece) -> &M {
        match piece.left_crack {
            Some(id) => self.tree.meta(id),
            None => &self.head_meta,
        }
    }

    /// Mutable metadata of `piece`.
    pub fn piece_meta_mut(&mut self, piece: &Piece) -> &mut M {
        match piece.left_crack {
            Some(id) => self.tree.meta_mut(id),
            None => &mut self.head_meta,
        }
    }

    /// Direct read access to the underlying tree (for updates and tests).
    pub fn tree(&self) -> &AvlTree<M> {
        &self.tree
    }

    /// Direct mutable access to the underlying tree.
    ///
    /// The Ripple update algorithm shifts crack positions through node
    /// handles; it must preserve the monotonicity of positions in key
    /// order.
    pub fn tree_mut(&mut self) -> &mut AvlTree<M> {
        &mut self.tree
    }

    /// All pieces in position order. Allocates; intended for inspection,
    /// tests and the hybrid engines' piece tables, not hot paths.
    pub fn pieces(&self) -> Vec<Piece> {
        let cracks: Vec<(u64, usize)> = self.tree.iter_asc().map(|(k, p, _)| (k, p)).collect();
        let ids: Vec<NodeId> = cracks
            .iter()
            .map(|(k, _)| self.tree.find(*k).expect("crack key present"))
            .collect();
        let mut out = Vec::with_capacity(cracks.len() + 1);
        let mut start = 0usize;
        let mut lo_key = None;
        let mut left = None;
        for (i, (k, p)) in cracks.iter().enumerate() {
            out.push(Piece {
                start,
                end: *p,
                lo_key,
                hi_key: Some(*k),
                left_crack: left,
                right_crack: Some(ids[i]),
            });
            start = *p;
            lo_key = Some(*k);
            left = Some(ids[i]);
        }
        out.push(Piece {
            start,
            end: self.column_len,
            lo_key,
            hi_key: None,
            left_crack: left,
            right_crack: None,
        });
        out
    }

    /// Whether crack positions are non-decreasing in key order and within
    /// the column bounds.
    pub fn check_positions_monotone(&self) -> bool {
        let mut prev = 0usize;
        for (_, pos, _) in self.tree.iter_asc() {
            if pos < prev || pos > self.column_len {
                return false;
            }
            prev = pos;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncracked_column_is_one_piece() {
        let idx: CrackerIndex<()> = CrackerIndex::new(100);
        assert_eq!(idx.piece_count(), 1);
        let p = idx.piece_containing(42);
        assert_eq!((p.start, p.end), (0, 100));
        assert_eq!(p.lo_key, None);
        assert_eq!(p.hi_key, None);
        assert!(p.left_crack.is_none() && p.right_crack.is_none());
    }

    #[test]
    fn piece_lookup_after_cracks() {
        let mut idx: CrackerIndex<()> = CrackerIndex::new(100);
        idx.add_crack(50, 48);
        idx.add_crack(80, 75);
        assert_eq!(idx.piece_count(), 3);

        let p = idx.piece_containing(10);
        assert_eq!((p.start, p.end), (0, 48));
        assert_eq!((p.lo_key, p.hi_key), (None, Some(50)));

        // Key equal to a crack value belongs to the right-hand piece.
        let p = idx.piece_containing(50);
        assert_eq!((p.start, p.end), (48, 75));
        assert_eq!((p.lo_key, p.hi_key), (Some(50), Some(80)));

        let p = idx.piece_containing(79);
        assert_eq!((p.start, p.end), (48, 75));

        let p = idx.piece_containing(99);
        assert_eq!((p.start, p.end), (75, 100));
        assert_eq!((p.lo_key, p.hi_key), (Some(80), None));
    }

    #[test]
    fn add_crack_at_existing_value_is_noop() {
        let mut idx: CrackerIndex<()> = CrackerIndex::new(100);
        let a = idx.add_crack(50, 48);
        let b = idx.add_crack(50, 48);
        assert_eq!(a, b);
        assert_eq!(idx.crack_count(), 1);
    }

    #[derive(Default, Debug, Clone, PartialEq)]
    struct Counter {
        count: u32,
        job: Option<&'static str>,
    }

    impl PieceMeta for Counter {
        fn inherit(&self) -> Self {
            Counter {
                count: self.count,
                job: None, // jobs never survive a split
            }
        }
    }

    #[test]
    fn meta_is_inherited_on_split_without_jobs() {
        let mut idx: CrackerIndex<Counter> = CrackerIndex::new(100);
        // Put state on the head piece.
        let head = idx.piece_containing(0);
        *idx.piece_meta_mut(&head) = Counter {
            count: 7,
            job: Some("active"),
        };
        // Splitting it inherits the counter but not the job.
        idx.add_crack(50, 50);
        let left = idx.piece_containing(0);
        let right = idx.piece_containing(60);
        assert_eq!(idx.piece_meta(&left).count, 7);
        assert_eq!(
            idx.piece_meta(&left).job,
            Some("active"),
            "parent keeps its job"
        );
        assert_eq!(idx.piece_meta(&right).count, 7, "child inherits counter");
        assert_eq!(
            idx.piece_meta(&right).job,
            None,
            "child must not inherit job"
        );
    }

    #[test]
    fn pieces_enumeration_covers_column() {
        let mut idx: CrackerIndex<()> = CrackerIndex::new(1000);
        for (k, p) in [(100u64, 90usize), (500, 520), (900, 905), (300, 280)] {
            idx.add_crack(k, p);
        }
        let pieces = idx.pieces();
        assert_eq!(pieces.len(), 5);
        assert_eq!(pieces[0].start, 0);
        assert_eq!(pieces.last().unwrap().end, 1000);
        for w in pieces.windows(2) {
            assert_eq!(w[0].end, w[1].start, "pieces must tile the column");
            assert_eq!(w[0].hi_key, w[1].lo_key);
        }
    }

    #[test]
    fn positions_monotonicity_check() {
        let mut idx: CrackerIndex<()> = CrackerIndex::new(100);
        idx.add_crack(10, 20);
        idx.add_crack(20, 40);
        assert!(idx.check_positions_monotone());
        // Force a violation through the raw tree handle.
        let id = idx.tree().find(20).unwrap();
        idx.tree_mut().set_pos(id, 5);
        assert!(!idx.check_positions_monotone());
    }

    #[test]
    fn empty_pieces_are_representable() {
        let mut idx: CrackerIndex<()> = CrackerIndex::new(100);
        idx.add_crack(10, 30);
        idx.add_crack(20, 30); // nothing between keys 10 and 20
        let p = idx.piece_containing(15);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!((p.start, p.end), (30, 30));
    }

    #[test]
    fn clear_returns_to_single_piece() {
        let mut idx: CrackerIndex<()> = CrackerIndex::new(100);
        idx.add_crack(10, 30);
        idx.clear();
        assert_eq!(idx.piece_count(), 1);
        let p = idx.piece_containing(10);
        assert_eq!((p.start, p.end), (0, 100));
    }

    #[test]
    fn column_len_resize() {
        let mut idx: CrackerIndex<()> = CrackerIndex::new(100);
        idx.add_crack(10, 30);
        idx.set_column_len(101);
        let p = idx.piece_containing(50);
        assert_eq!(p.end, 101);
    }
}
