//! Deterministic adversarial stress for the AVL tree and cracker index:
//! insertion orders chosen to maximize each rotation pattern, at scales
//! the randomized property tests do not reach.

use scrack_index::{AvlTree, CrackerIndex};

const N: u64 = 50_000;

fn check_sorted_iteration(tree: &AvlTree<()>, expect_len: usize) {
    tree.check_invariants().expect("AVL invariants");
    assert_eq!(tree.len(), expect_len);
    let keys: Vec<u64> = tree.iter_asc().map(|(key, _pos, _meta)| key).collect();
    assert!(keys.windows(2).all(|w| w[0] < w[1]), "ascending, unique");
    assert_eq!(keys.len(), expect_len);
}

#[test]
fn ascending_insertions_all_left_rotations() {
    let mut tree: AvlTree<()> = AvlTree::new();
    for k in 0..N {
        tree.insert(k, k as usize, ());
    }
    check_sorted_iteration(&tree, N as usize);
}

#[test]
fn descending_insertions_all_right_rotations() {
    let mut tree: AvlTree<()> = AvlTree::new();
    for k in (0..N).rev() {
        tree.insert(k, k as usize, ());
    }
    check_sorted_iteration(&tree, N as usize);
}

#[test]
fn zigzag_insertions_double_rotations() {
    let mut tree: AvlTree<()> = AvlTree::new();
    let mut count = 0;
    for i in 0..N / 2 {
        tree.insert(i, i as usize, ());
        tree.insert(N - 1 - i, (N - 1 - i) as usize, ());
        count += 2;
    }
    check_sorted_iteration(&tree, count);
}

#[test]
fn bit_reversed_insertions() {
    // Bit-reversal permutation: maximally non-monotonic order.
    let bits = 16;
    let mut tree: AvlTree<()> = AvlTree::new();
    for i in 0u64..(1 << bits) {
        let r = i.reverse_bits() >> (64 - bits);
        tree.insert(r, r as usize, ());
    }
    check_sorted_iteration(&tree, 1 << bits);
}

#[test]
fn interleaved_insert_remove_waves() {
    let mut tree: AvlTree<()> = AvlTree::new();
    // Wave 1: evens in. Wave 2: odds in, evens out. Wave 3: evens back.
    for k in (0..N).step_by(2) {
        tree.insert(k, k as usize, ());
    }
    for k in (1..N).step_by(2) {
        tree.insert(k, k as usize, ());
    }
    for k in (0..N).step_by(2) {
        assert!(tree.remove(k).is_some(), "remove {k}");
    }
    tree.check_invariants().expect("after removals");
    assert_eq!(tree.len(), (N / 2) as usize);
    for k in (0..N).step_by(2) {
        tree.insert(k, k as usize, ());
    }
    check_sorted_iteration(&tree, N as usize);
}

#[test]
fn duplicate_inserts_update_not_grow() {
    let mut tree: AvlTree<()> = AvlTree::new();
    for k in 0..1000u64 {
        tree.insert(k, k as usize, ());
    }
    for k in 0..1000u64 {
        let (_, fresh) = tree.insert(k, (k + 7) as usize, ());
        assert!(!fresh, "re-insert of {k} must not create a node");
    }
    assert_eq!(tree.len(), 1000);
    tree.check_invariants().expect("after duplicate inserts");
}

#[test]
fn logarithmic_search_depth_after_adversarial_order() {
    // Indirect height check: predecessor queries over an ascending-built
    // tree must be fast enough to do 10^6 of them instantly; correctness
    // of every answer is the assertion.
    let mut tree: AvlTree<()> = AvlTree::new();
    for k in 0..N {
        tree.insert(k * 2, k as usize, ());
    }
    for probe in 0..N {
        let id = tree
            .predecessor_or_equal(probe * 2 + 1)
            .expect("always a predecessor");
        assert_eq!(tree.key(id), probe * 2);
    }
}

#[test]
fn cracker_index_piece_walk_is_exhaustive() {
    // Cracks at every multiple of 100: the piece list must tile the
    // column exactly, and piece_containing must agree with the tiling.
    let mut idx: CrackerIndex<()> = CrackerIndex::new(10_000);
    for i in 1..100u64 {
        idx.add_crack(i * 100, (i * 100) as usize);
    }
    let pieces = idx.pieces();
    assert_eq!(pieces.len(), 100);
    let mut cursor = 0usize;
    for p in &pieces {
        assert_eq!(p.start, cursor, "pieces must tile contiguously");
        cursor = p.end;
    }
    assert_eq!(cursor, 10_000);
    for key in [0u64, 99, 100, 9_999, 10_000, 54_321] {
        let p = idx.piece_containing(key);
        if let Some(lo) = p.lo_key {
            assert!(lo <= key);
        }
        if let Some(hi) = p.hi_key {
            assert!(key < hi);
        }
    }
    assert!(idx.check_positions_monotone());
}
