//! Property tests: every index representation against a BTreeMap model,
//! cracker-index piece consistency under random crack sequences, and the
//! three-way Avl/Flat/Radix cross-policy equivalence contract.

use proptest::prelude::*;
use scrack_index::{AvlTree, CrackerIndex, FlatIndex, IndexPolicy, RadixIndex};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Remove(u64),
    QueryPred(u64),
    QuerySucc(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..200).prop_map(Op::Insert),
        (0u64..200).prop_map(Op::Remove),
        (0u64..200).prop_map(Op::QueryPred),
        (0u64..200).prop_map(Op::QuerySucc),
    ]
}

proptest! {
    #[test]
    fn avl_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut tree: AvlTree<u64> = AvlTree::new();
        let mut model: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Insert(k) => {
                    let fresh_expected = !model.contains_key(&k);
                    model.entry(k).or_insert(i);
                    let (_, fresh) = tree.insert(k, i, k);
                    prop_assert_eq!(fresh, fresh_expected);
                }
                Op::Remove(k) => {
                    let expect = model.remove(&k);
                    let got = tree.remove(k);
                    prop_assert_eq!(got.map(|(p, _)| p), expect);
                }
                Op::QueryPred(k) => {
                    let got = tree.predecessor_or_equal(k).map(|id| tree.key(id));
                    let expect = model.range(..=k).next_back().map(|(k, _)| *k);
                    prop_assert_eq!(got, expect);
                }
                Op::QuerySucc(k) => {
                    let got = tree.successor_strict(k).map(|id| tree.key(id));
                    let expect = model
                        .range((std::ops::Bound::Excluded(k), std::ops::Bound::Unbounded))
                        .next()
                        .map(|(k, _)| *k);
                    prop_assert_eq!(got, expect);
                }
            }
            tree.check_invariants().map_err(TestCaseError::fail)?;
        }
        let got: Vec<u64> = tree.iter_asc().map(|(k, _, _)| k).collect();
        let expect: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(tree.len(), model.len());
    }

    #[test]
    fn cracker_index_pieces_always_tile_the_column(
        cracks in proptest::collection::vec((0u64..1000, 0usize..1000), 0..100),
        column_len in 1000usize..1001,
    ) {
        // Build cracks with positions made monotone-consistent: sort by key
        // and force positions to be non-decreasing, as real cracking does.
        let mut cracks = cracks;
        cracks.sort_by_key(|(k, _)| *k);
        cracks.dedup_by_key(|(k, _)| *k);
        let mut pos_floor = 0usize;
        let mut idx: CrackerIndex<()> = CrackerIndex::new(column_len);
        for (k, p) in cracks.iter() {
            let p = (*p).max(pos_floor).min(column_len);
            pos_floor = p;
            idx.add_crack(*k, p);
        }
        prop_assert!(idx.check_positions_monotone());
        let pieces = idx.pieces();
        prop_assert_eq!(pieces.len(), idx.piece_count());
        prop_assert_eq!(pieces[0].start, 0);
        prop_assert_eq!(pieces.last().unwrap().end, column_len);
        for w in pieces.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // Every probe key lands in the piece whose bounds contain it.
        for probe in [0u64, 1, 250, 500, 999, 1000, 5000] {
            let p = idx.piece_containing(probe);
            if let Some(lo) = p.lo_key {
                prop_assert!(lo <= probe);
            }
            if let Some(hi) = p.hi_key {
                prop_assert!(probe < hi);
            }
        }
    }

    /// The flat index against the same BTreeMap model the AVL test uses:
    /// identical neighbor-query semantics, entry for entry.
    #[test]
    fn flat_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut flat: FlatIndex<u64> = FlatIndex::new();
        let mut model: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Insert(k) => {
                    let fresh_expected = !model.contains_key(&k);
                    model.entry(k).or_insert(i);
                    let (_, fresh) = flat.insert(k, i, k);
                    prop_assert_eq!(fresh, fresh_expected);
                }
                Op::Remove(k) => {
                    let expect = model.remove(&k);
                    let got = flat.remove(k);
                    prop_assert_eq!(got.map(|(p, _)| p), expect);
                }
                Op::QueryPred(k) => {
                    let got = flat.predecessor_or_equal(k).map(|id| flat.key(id));
                    let expect = model.range(..=k).next_back().map(|(k, _)| *k);
                    prop_assert_eq!(got, expect);
                }
                Op::QuerySucc(k) => {
                    let got = flat.successor_strict(k).map(|id| flat.key(id));
                    let expect = model
                        .range((std::ops::Bound::Excluded(k), std::ops::Bound::Unbounded))
                        .next()
                        .map(|(k, _)| *k);
                    prop_assert_eq!(got, expect);
                }
            }
            flat.check_invariants().map_err(TestCaseError::fail)?;
        }
        let got: Vec<u64> = flat.iter_asc().map(|(k, _, _)| k).collect();
        let expect: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(flat.len(), model.len());
    }

    /// The radix trie against the same BTreeMap model the AVL and flat
    /// tests use: identical neighbor-query semantics, entry for entry.
    #[test]
    fn radix_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut trie: RadixIndex<u64> = RadixIndex::new();
        let mut model: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Insert(k) => {
                    let fresh_expected = !model.contains_key(&k);
                    model.entry(k).or_insert(i);
                    let (_, fresh) = trie.insert(k, i, k);
                    prop_assert_eq!(fresh, fresh_expected);
                }
                Op::Remove(k) => {
                    let expect = model.remove(&k);
                    let got = trie.remove(k);
                    prop_assert_eq!(got.map(|(p, _)| p), expect);
                }
                Op::QueryPred(k) => {
                    let got = trie.predecessor_or_equal(k).map(|id| trie.key(id));
                    let expect = model.range(..=k).next_back().map(|(k, _)| *k);
                    prop_assert_eq!(got, expect);
                }
                Op::QuerySucc(k) => {
                    let got = trie.successor_strict(k).map(|id| trie.key(id));
                    let expect = model
                        .range((std::ops::Bound::Excluded(k), std::ops::Bound::Unbounded))
                        .next()
                        .map(|(k, _)| *k);
                    prop_assert_eq!(got, expect);
                }
            }
            trie.check_invariants().map_err(TestCaseError::fail)?;
        }
        let got: Vec<u64> = trie.iter_asc().map(|(k, _, _)| k).collect();
        let expect: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(trie.len(), model.len());
    }

    /// The radix model test again, over the full u64 domain: deep splits,
    /// shared prefixes and extreme keys, where nibble arithmetic could go
    /// wrong in ways small keys never exercise.
    #[test]
    fn radix_matches_btreemap_model_on_wide_keys(
        keys in proptest::collection::vec(any::<u64>(), 1..150),
        probes in proptest::collection::vec(any::<u64>(), 1..60),
    ) {
        let mut trie: RadixIndex<()> = RadixIndex::new();
        let mut model: BTreeMap<u64, ()> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            trie.insert(*k, i, ());
            model.insert(*k, ());
        }
        trie.check_invariants().map_err(TestCaseError::fail)?;
        for probe in probes {
            let got = trie.predecessor_or_equal(probe).map(|id| trie.key(id));
            let expect = model.range(..=probe).next_back().map(|(k, _)| *k);
            prop_assert_eq!(got, expect, "pred_or_eq({:#x})", probe);
            let got = trie.successor_strict(probe).map(|id| trie.key(id));
            let expect = model
                .range((std::ops::Bound::Excluded(probe), std::ops::Bound::Unbounded))
                .next()
                .map(|(k, _)| *k);
            prop_assert_eq!(got, expect, "succ_strict({:#x})", probe);
        }
    }

    /// The cross-policy contract at the index layer: identical crack
    /// sequences produce identical pieces, for every probe, under every
    /// representation — including the piece-metadata routing.
    #[test]
    fn index_policies_are_observationally_identical(
        cracks in proptest::collection::vec((0u64..1000, 0usize..1000), 0..100),
        probes in proptest::collection::vec(0u64..1200, 1..50),
    ) {
        let mut cracks = cracks;
        cracks.sort_by_key(|(k, _)| *k);
        cracks.dedup_by_key(|(k, _)| *k);
        let column_len = 1000usize;
        let mut indexes: Vec<CrackerIndex<()>> = IndexPolicy::ALL
            .iter()
            .map(|p| CrackerIndex::with_policy(column_len, *p))
            .collect();
        let mut pos_floor = 0usize;
        for (k, p) in cracks.iter() {
            let p = (*p).max(pos_floor).min(column_len);
            pos_floor = p;
            for idx in &mut indexes {
                idx.add_crack(*k, p);
            }
        }
        let (reference, others) = indexes.split_first().unwrap();
        let cr: Vec<(u64, usize)> = reference.iter_cracks().map(|(k, p, _)| (k, p)).collect();
        let pr: Vec<(usize, usize, Option<u64>, Option<u64>)> = reference
            .iter_pieces()
            .map(|p| (p.start, p.end, p.lo_key, p.hi_key))
            .collect();
        for other in others {
            prop_assert_eq!(reference.crack_count(), other.crack_count());
            let co: Vec<(u64, usize)> = other.iter_cracks().map(|(k, p, _)| (k, p)).collect();
            prop_assert_eq!(&cr, &co, "{}: crack lists differ", other.policy());
            for probe in &probes {
                let pa = reference.piece_containing(*probe);
                let pb = other.piece_containing(*probe);
                prop_assert_eq!(
                    (pa.start, pa.end, pa.lo_key, pa.hi_key),
                    (pb.start, pb.end, pb.lo_key, pb.hi_key),
                    "{}: piece_containing({}) differs", other.policy(), probe
                );
            }
            let po: Vec<(usize, usize, Option<u64>, Option<u64>)> = other
                .iter_pieces()
                .map(|p| (p.start, p.end, p.lo_key, p.hi_key))
                .collect();
            prop_assert_eq!(&pr, &po, "{}: piece enumerations differ", other.policy());
        }
    }
}
