//! Property tests for sideways cracking: any select-project query stream
//! over any (head, tail) pairing must equal the naive filter-and-project.

use proptest::prelude::*;
use scrack_columnstore::Table;
use scrack_core::CrackConfig;
use scrack_sideways::{MapStrategy, SidewaysCracker};
use scrack_types::QueryRange;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn select_project_equals_naive(
        stochastic in any::<bool>(),
        seed in 0u64..200,
        tails in proptest::collection::vec(0u64..10_000, 100..400),
        raw_queries in proptest::collection::vec((0u64..500, 1u64..120), 1..30),
    ) {
        let n = tails.len() as u64;
        // Heads: a permutation-ish spread over [0, n); tails arbitrary.
        let heads: Vec<u64> = (0..n).map(|i| (i * 131 + seed) % n).collect();
        let mut table = Table::new();
        table.add_column("h", heads.clone());
        table.add_column("t", tails.clone());
        let strategy = if stochastic { MapStrategy::Stochastic } else { MapStrategy::Crack };
        let mut sw = SidewaysCracker::new(table, strategy, CrackConfig::default(), seed);
        for (a, w) in raw_queries {
            let a = a % n;
            let q = QueryRange::new(a, a + w);
            let mut got = sw.select_project("h", q, "t");
            got.sort_unstable();
            let mut expect: Vec<u64> = heads
                .iter()
                .zip(&tails)
                .filter(|(h, _)| q.contains(**h))
                .map(|(_, t)| *t)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
