//! Cracker maps and the self-organizing map set.

use crate::pair::Pair;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_columnstore::{QueryOutput, Table};
use scrack_core::{CrackConfig, CrackedColumn};
use scrack_types::{QueryRange, Stats};
use std::collections::HashMap;

/// Which reorganization runs inside the maps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapStrategy {
    /// Original cracking (query-bound cracks).
    Crack,
    /// Stochastic cracking (MDD1R): robust against focused workloads.
    Stochastic,
}

/// One adaptive `(head, tail)` map: a cracked two-attribute array.
///
/// A select `[low, high)` on the head attribute answers with the
/// qualifying pairs *and* reorganizes the map, exactly like a cracker
/// column — the tail values travel with their heads, so projections need
/// no positional join afterwards.
#[derive(Debug, Clone)]
pub struct CrackerMap {
    col: CrackedColumn<Pair>,
    rng: SmallRng,
    strategy: MapStrategy,
}

impl CrackerMap {
    /// Builds a map by zipping two equal-length attribute columns (the
    /// one-pass map creation of sideways cracking).
    pub fn from_columns(
        head: &[u64],
        tail: &[u64],
        strategy: MapStrategy,
        config: CrackConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(head.len(), tail.len(), "attribute lengths must agree");
        let pairs: Vec<Pair> = head
            .iter()
            .zip(tail)
            .map(|(h, t)| Pair::new(*h, *t))
            .collect();
        let mut col = CrackedColumn::new(pairs, config);
        // Map creation touches every tuple of both columns once.
        col.stats_mut().touched += 2 * head.len() as u64;
        Self {
            col,
            rng: SmallRng::seed_from_u64(seed),
            strategy,
        }
    }

    /// Number of pairs in the map.
    pub fn len(&self) -> usize {
        self.col.data().len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.col.data().is_empty()
    }

    /// Cumulative physical costs of this map.
    pub fn stats(&self) -> Stats {
        self.col.stats()
    }

    /// The map's current physical order (views resolve against this).
    pub fn data(&self) -> &[Pair] {
        self.col.data()
    }

    /// Selects pairs whose head falls in `q`, reorganizing as configured.
    pub fn select(&mut self, q: QueryRange) -> QueryOutput<Pair> {
        match self.strategy {
            MapStrategy::Crack => self.col.select_original(q),
            MapStrategy::Stochastic => self.col.mdd1r_select(q, &mut self.rng),
        }
    }

    /// Selects and projects the tail attribute.
    pub fn select_tails(&mut self, q: QueryRange) -> Vec<u64> {
        let out = self.select(q);
        out.resolve(self.col.data()).map(|p| p.tail).collect()
    }
}

/// The self-organizing map set over a base table.
///
/// Maps appear on demand: the first query selecting on `A` and projecting
/// `B` creates the `(A, B)` map with one fused scan; every later such
/// query refines it. Non-queried attribute pairs never pay anything —
/// "only those tables, columns, and key ranges that are queried are being
/// optimized" (§2).
///
/// ```
/// use scrack_columnstore::Table;
/// use scrack_core::CrackConfig;
/// use scrack_sideways::{MapStrategy, SidewaysCracker};
/// use scrack_types::QueryRange;
///
/// let mut table = Table::new();
/// table.add_column("ra", vec![30, 10, 20, 40]);
/// table.add_column("mag", vec![3, 1, 2, 4]);
/// let mut sw = SidewaysCracker::new(table, MapStrategy::Stochastic, CrackConfig::default(), 7);
///
/// let mut mags = sw.select_project("ra", QueryRange::new(10, 31), "mag");
/// mags.sort_unstable();
/// assert_eq!(mags, vec![1, 2, 3]);
/// assert_eq!(sw.map_count(), 1);
/// ```
#[derive(Debug)]
pub struct SidewaysCracker {
    table: Table,
    maps: HashMap<(String, String), CrackerMap>,
    strategy: MapStrategy,
    config: CrackConfig,
    seed: u64,
}

impl SidewaysCracker {
    /// Wraps a table; no maps exist yet.
    pub fn new(table: Table, strategy: MapStrategy, config: CrackConfig, seed: u64) -> Self {
        Self {
            table,
            maps: HashMap::new(),
            strategy,
            config,
            seed,
        }
    }

    /// Number of maps materialized so far.
    pub fn map_count(&self) -> usize {
        self.maps.len()
    }

    /// The map for `(select_attr, project_attr)`, creating it on first use.
    ///
    /// # Panics
    /// If either attribute does not exist in the table.
    pub fn map_mut(&mut self, select_attr: &str, project_attr: &str) -> &mut CrackerMap {
        let key = (select_attr.to_string(), project_attr.to_string());
        if !self.maps.contains_key(&key) {
            let head = self
                .table
                .column(select_attr)
                .unwrap_or_else(|| panic!("unknown attribute {select_attr:?}"));
            let tail = self
                .table
                .column(project_attr)
                .unwrap_or_else(|| panic!("unknown attribute {project_attr:?}"));
            let seed = self
                .seed
                .wrapping_add(self.maps.len() as u64)
                .wrapping_mul(0x9E3779B97F4A7C15);
            let map = CrackerMap::from_columns(head, tail, self.strategy, self.config, seed);
            self.maps.insert(key.clone(), map);
        }
        self.maps.get_mut(&key).expect("just inserted")
    }

    /// `SELECT project_attr FROM t WHERE low <= select_attr < high`,
    /// adaptively indexed sideways.
    pub fn select_project(
        &mut self,
        select_attr: &str,
        q: QueryRange,
        project_attr: &str,
    ) -> Vec<u64> {
        self.map_mut(select_attr, project_attr).select_tails(q)
    }

    /// Total physical cost across all maps.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        for m in self.maps.values() {
            s += m.stats();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: u64) -> Table {
        let a: Vec<u64> = (0..n).map(|i| (i * 7919) % n).collect();
        let b: Vec<u64> = a.iter().map(|k| k * 3 + 1).collect();
        let c: Vec<u64> = a.iter().map(|k| k / 2).collect();
        let mut t = Table::new();
        t.add_column("a", a);
        t.add_column("b", b);
        t.add_column("c", c);
        t
    }

    fn expected_tails(t: &Table, sel: &str, q: QueryRange, proj: &str) -> Vec<u64> {
        let heads = t.column(sel).unwrap();
        let tails = t.column(proj).unwrap();
        let mut v: Vec<u64> = heads
            .iter()
            .zip(tails)
            .filter(|(h, _)| q.contains(**h))
            .map(|(_, t)| *t)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn select_project_matches_naive_for_both_strategies() {
        for strategy in [MapStrategy::Crack, MapStrategy::Stochastic] {
            let t = table(2_000);
            let mut sw = SidewaysCracker::new(t.clone(), strategy, CrackConfig::default(), 7);
            for i in 0..40u64 {
                let a = (i * 97) % 1_900;
                let q = QueryRange::new(a, a + 60);
                let mut got = sw.select_project("a", q, "b");
                got.sort_unstable();
                assert_eq!(
                    got,
                    expected_tails(&t, "a", q, "b"),
                    "{strategy:?} query {i}"
                );
            }
        }
    }

    #[test]
    fn maps_are_created_lazily_and_once() {
        let t = table(500);
        let mut sw = SidewaysCracker::new(t, MapStrategy::Stochastic, CrackConfig::default(), 7);
        assert_eq!(sw.map_count(), 0);
        sw.select_project("a", QueryRange::new(0, 10), "b");
        assert_eq!(sw.map_count(), 1);
        sw.select_project("a", QueryRange::new(20, 30), "b");
        assert_eq!(sw.map_count(), 1, "same pair reuses the map");
        sw.select_project("a", QueryRange::new(0, 10), "c");
        assert_eq!(sw.map_count(), 2, "different projection gets its own map");
    }

    #[test]
    fn map_refines_like_a_cracker_column() {
        let t = table(10_000);
        let mut sw = SidewaysCracker::new(t, MapStrategy::Stochastic, CrackConfig::default(), 7);
        // Warm the map with many queries, then check marginal cost fell.
        for i in 0..100u64 {
            let a = (i * 95) % 9_000;
            sw.select_project("a", QueryRange::new(a, a + 50), "b");
        }
        let warm = sw.stats();
        sw.select_project("a", QueryRange::new(4_000, 4_050), "b");
        let delta = sw.stats().since(&warm);
        assert!(
            delta.touched < 2_000,
            "a warmed map must answer with little work, touched {}",
            delta.touched
        );
    }

    #[test]
    fn stochastic_maps_survive_sequential_projection_workloads() {
        // The robustness claim carried sideways: sequential selection on
        // a map must not degenerate with the stochastic strategy.
        let t = table(20_000);
        let mut crack =
            SidewaysCracker::new(t.clone(), MapStrategy::Crack, CrackConfig::default(), 7);
        let mut scrack =
            SidewaysCracker::new(t, MapStrategy::Stochastic, CrackConfig::default(), 7);
        for i in 0..200u64 {
            let a = i * 99;
            let q = QueryRange::new(a, a + 10);
            crack.select_project("a", q, "b");
            scrack.select_project("a", q, "b");
        }
        let (c, s) = (crack.stats().touched, scrack.stats().touched);
        assert!(
            c > 3 * s,
            "sideways stochastic cracking must keep its robustness edge: \
             crack={c}, scrack={s}"
        );
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn unknown_attribute_panics() {
        let t = table(100);
        let mut sw = SidewaysCracker::new(t, MapStrategy::Crack, CrackConfig::default(), 7);
        sw.select_project("nope", QueryRange::new(0, 1), "b");
    }

    #[test]
    fn pairs_stay_zipped_under_reorganization() {
        let t = table(3_000);
        let mut sw = SidewaysCracker::new(t, MapStrategy::Stochastic, CrackConfig::default(), 7);
        for i in 0..30u64 {
            let a = (i * 313) % 2_900;
            sw.select_project("a", QueryRange::new(a, a + 40), "b");
        }
        let map = sw.map_mut("a", "b");
        for p in map.data() {
            assert_eq!(p.tail, p.head * 3 + 1, "tail detached from head");
        }
    }
}
