//! Sideways cracking: adaptive cross-column maps.
//!
//! Original cracking reorganizes one column; real queries select on one
//! attribute and *project* others. Sideways cracking (Idreos, Kersten,
//! Manegold: "Self-organizing tuple reconstruction in column stores",
//! SIGMOD 2009 — reference \[18\] of the stochastic cracking paper) keeps
//! adaptively-created **cracker maps**: two-column `(head, tail)` arrays
//! cracked on the head attribute, so that a select on `A` projecting `B`
//! returns `B` values from a contiguous area without positional joins.
//!
//! This crate reproduces the core of that design on top of the stochastic
//! cracking engines — demonstrating the paper's §6 point that stochastic
//! cracking "does not violate the design principles and interfaces of
//! original cracking" and composes with the sideways architecture:
//!
//! * [`Pair`] — a head/tail element; cracking moves both together;
//! * [`CrackerMap`] — one `(A, B)` map wrapping a
//!   [`CrackedColumn`](scrack_core::CrackedColumn) over pairs, cracked by
//!   the configured strategy (original or stochastic);
//! * [`SidewaysCracker`] — the self-organizing map set of a table: maps
//!   are created lazily on first use and refined by every query.
//!
//! Maps are created whole on first touch (one fused scan).
//! [`BudgetedSideways`] adds the storage dimension of \[18\] -- maps
//! "dynamically created and deleted based on storage restrictions" --
//! via whole-map LRU eviction under a resident-pair budget; the *chunk*-
//! granular partial maps of the SIGMOD 2009 paper remain out of scope
//! (see the `budget` module docs for what the simplification keeps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod map;
mod pair;

pub use budget::BudgetedSideways;
pub use map::{CrackerMap, MapStrategy, SidewaysCracker};
pub use pair::Pair;
