//! The two-attribute element of a cracker map.

use scrack_types::Element;

/// One entry of a cracker map: the selection attribute (`head`) and the
/// projected attribute (`tail`), physically reorganized together.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Pair {
    /// The attribute the map is cracked on.
    pub head: u64,
    /// The attribute returned by projections.
    pub tail: u64,
}

impl Pair {
    /// Creates a head/tail pair.
    #[inline]
    pub fn new(head: u64, tail: u64) -> Self {
        Self { head, tail }
    }
}

impl Element for Pair {
    #[inline(always)]
    fn key(&self) -> u64 {
        self.head
    }

    #[inline(always)]
    fn from_key_row(key: u64, row: u32) -> Self {
        // Only used by generic data generators; the tail defaults to the
        // rowid until a real map zips actual columns.
        Self {
            head: key,
            tail: u64::from(row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_head() {
        let p = Pair::new(5, 99);
        assert_eq!(p.key(), 5);
        assert_eq!(p.tail, 99);
    }

    #[test]
    fn pair_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Pair>(), 16);
    }
}
