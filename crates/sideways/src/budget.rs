//! Storage-restricted map sets: maps "dynamically created and deleted
//! based on storage restrictions" (§2 of the stochastic cracking paper,
//! describing reference [18]'s partial sideways cracking).
//!
//! [`SidewaysCracker`](crate::SidewaysCracker) materializes every touched
//! `(select, project)` map and keeps it forever — fine for a handful of
//! attribute pairs, unacceptable when a table has dozens of projected
//! attributes (the map set is quadratic in attributes in the worst case).
//! [`BudgetedSideways`] adds the storage dimension: a budget in resident
//! pairs, enforced by least-recently-used *whole-map* eviction. An
//! evicted map loses its accumulated cracker index and is rebuilt on next
//! touch — the adaptive trade-off the storage restriction forces.
//! (Reference [18] evicts at chunk granularity; whole-map LRU reproduces
//! the behaviourally relevant part — rebuild cost on re-touch versus
//! bounded memory — without the chunk bookkeeping.)

use crate::map::{CrackerMap, MapStrategy};
use scrack_columnstore::Table;
use scrack_core::CrackConfig;
use scrack_types::{QueryRange, Stats};

struct Entry {
    key: (String, String),
    map: CrackerMap,
    last_used: u64,
}

/// A sideways map set under a storage budget (see module docs).
///
/// ```
/// use scrack_columnstore::Table;
/// use scrack_core::CrackConfig;
/// use scrack_sideways::{BudgetedSideways, MapStrategy};
/// use scrack_types::QueryRange;
///
/// let mut table = Table::new();
/// table.add_column("key", (0..10_000u64).rev().collect());
/// table.add_column("payload", (0..10_000u64).map(|i| i * 3).collect());
/// // Budget: one resident map of 10_000 pairs.
/// let mut maps = BudgetedSideways::new(
///     table, MapStrategy::Stochastic, CrackConfig::default(), 7, 10_000,
/// );
/// let tails = maps.select_project("key", QueryRange::new(100, 110), "payload");
/// assert_eq!(tails.len(), 10);
/// assert_eq!(maps.resident_maps(), 1);
/// ```
pub struct BudgetedSideways {
    table: Table,
    entries: Vec<Entry>,
    strategy: MapStrategy,
    config: CrackConfig,
    seed: u64,
    budget_pairs: usize,
    tick: u64,
    created: u64,
    evictions: u64,
    /// Stats of maps that were evicted (so totals stay monotone).
    retired_stats: Stats,
}

impl BudgetedSideways {
    /// Wraps `table` with a budget of `budget_pairs` resident pairs.
    ///
    /// # Panics
    /// If the budget cannot hold even one map (`budget_pairs <` rows).
    pub fn new(
        table: Table,
        strategy: MapStrategy,
        config: CrackConfig,
        seed: u64,
        budget_pairs: usize,
    ) -> Self {
        assert!(
            budget_pairs >= table.rows(),
            "budget of {budget_pairs} pairs cannot hold one {}-row map",
            table.rows()
        );
        Self {
            table,
            entries: Vec::new(),
            strategy,
            config,
            seed,
            budget_pairs,
            tick: 0,
            created: 0,
            evictions: 0,
            retired_stats: Stats::new(),
        }
    }

    /// Number of currently resident maps.
    pub fn resident_maps(&self) -> usize {
        self.entries.len()
    }

    /// Resident pairs (always ≤ the budget).
    pub fn resident_pairs(&self) -> usize {
        self.entries.iter().map(|e| e.map.len()).sum()
    }

    /// Maps created over the lifetime (first touches + rebuilds).
    pub fn maps_created(&self) -> u64 {
        self.created
    }

    /// Maps evicted over the lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total physical cost across live and evicted maps.
    pub fn stats(&self) -> Stats {
        let mut s = self.retired_stats;
        for e in &self.entries {
            s += e.map.stats();
        }
        s
    }

    /// `SELECT project_attr FROM t WHERE low <= select_attr < high`,
    /// creating (or rebuilding) the map under the budget.
    pub fn select_project(
        &mut self,
        select_attr: &str,
        q: QueryRange,
        project_attr: &str,
    ) -> Vec<u64> {
        self.tick += 1;
        let tick = self.tick;
        let key = (select_attr.to_string(), project_attr.to_string());
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.last_used = tick;
            return e.map.select_tails(q);
        }
        // Miss: make room, then build.
        let rows = self.table.rows();
        while self.resident_pairs() + rows > self.budget_pairs {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("budget holds one map, so residents exist on overflow");
            let evicted = self.entries.swap_remove(lru);
            self.retired_stats += evicted.map.stats();
            self.evictions += 1;
        }
        let head = self
            .table
            .column(select_attr)
            .unwrap_or_else(|| panic!("unknown attribute {select_attr:?}"));
        let tail = self
            .table
            .column(project_attr)
            .unwrap_or_else(|| panic!("unknown attribute {project_attr:?}"));
        let seed = self
            .seed
            .wrapping_add(self.created)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut map = CrackerMap::from_columns(head, tail, self.strategy, self.config, seed);
        self.created += 1;
        let result = map.select_tails(q);
        self.entries.push(Entry {
            key,
            map,
            last_used: tick,
        });
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: u64) -> Table {
        let mut t = Table::new();
        t.add_column("a", (0..n).map(|i| (i * 48_271) % n).collect());
        t.add_column("b", (0..n).map(|i| i * 2).collect());
        t.add_column("c", (0..n).map(|i| n - 1 - i).collect());
        t
    }

    fn expect_tails(t: &Table, sel: &str, q: QueryRange, proj: &str) -> Vec<u64> {
        let head = t.column(sel).expect("sel");
        let tail = t.column(proj).expect("proj");
        let mut v: Vec<u64> = head
            .iter()
            .zip(tail)
            .filter(|(h, _)| q.contains(**h))
            .map(|(_, t)| *t)
            .collect();
        v.sort_unstable();
        v
    }

    fn check(got: Vec<u64>, mut expect: Vec<u64>, label: &str) {
        let mut got = got;
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect, "{label}");
    }

    #[test]
    fn budget_for_one_map_thrashes_but_stays_exact() {
        let n = 2000u64;
        let t = table(n);
        let mut s = BudgetedSideways::new(
            table(n),
            MapStrategy::Stochastic,
            CrackConfig::default(),
            7,
            n as usize, // exactly one resident map
        );
        for i in 0..30u64 {
            let q = QueryRange::new((i * 61) % 1500, (i * 61) % 1500 + 200);
            let (sel, proj) = if i % 2 == 0 { ("a", "b") } else { ("c", "b") };
            check(
                s.select_project(sel, q, proj),
                expect_tails(&t, sel, q, proj),
                &format!("query {i}"),
            );
            assert_eq!(s.resident_maps(), 1, "budget holds exactly one map");
        }
        assert!(s.evictions() >= 28, "alternating pairs must thrash");
        assert_eq!(s.maps_created(), s.evictions() + s.resident_maps() as u64);
    }

    #[test]
    fn lru_evicts_the_stalest_map() {
        let n = 1000u64;
        let mut s = BudgetedSideways::new(
            table(n),
            MapStrategy::Crack,
            CrackConfig::default(),
            7,
            2 * n as usize, // two resident maps
        );
        let q = QueryRange::new(100, 200);
        s.select_project("a", q, "b"); // resident: (a,b)
        s.select_project("c", q, "b"); // resident: (a,b), (c,b)
        s.select_project("a", q, "b"); // refresh (a,b)
        s.select_project("b", q, "c"); // must evict (c,b), the LRU
        assert_eq!(s.evictions(), 1);
        // (a,b) must still be resident: touching it creates nothing new.
        let created = s.maps_created();
        s.select_project("a", q, "b");
        assert_eq!(s.maps_created(), created, "(a,b) survived as MRU");
    }

    #[test]
    fn rebuilt_map_restarts_adaptation_but_answers_exactly() {
        let n = 3000u64;
        let t = table(n);
        let mut s = BudgetedSideways::new(
            table(n),
            MapStrategy::Stochastic,
            CrackConfig::default(),
            7,
            n as usize,
        );
        let q = QueryRange::new(500, 900);
        s.select_project("a", q, "b");
        s.select_project("c", q, "b"); // evicts (a,b) with its index
        check(
            s.select_project("a", q, "b"), // rebuild
            expect_tails(&t, "a", q, "b"),
            "after rebuild",
        );
        assert_eq!(s.evictions(), 2);
        assert_eq!(s.maps_created(), 3);
    }

    #[test]
    fn stats_survive_eviction() {
        let n = 1000u64;
        let mut s = BudgetedSideways::new(
            table(n),
            MapStrategy::Crack,
            CrackConfig::default(),
            7,
            n as usize,
        );
        s.select_project("a", QueryRange::new(0, 500), "b");
        let before = s.stats().touched;
        s.select_project("c", QueryRange::new(0, 500), "b"); // evicts (a,b)
        assert!(
            s.stats().touched > before,
            "retired stats must keep counting"
        );
    }

    #[test]
    #[should_panic(expected = "cannot hold one")]
    fn budget_below_one_map_rejected() {
        BudgetedSideways::new(
            table(1000),
            MapStrategy::Crack,
            CrackConfig::default(),
            7,
            999,
        );
    }

    #[test]
    fn generous_budget_never_evicts() {
        let n = 500u64;
        let mut s = BudgetedSideways::new(
            table(n),
            MapStrategy::Stochastic,
            CrackConfig::default(),
            7,
            10 * n as usize,
        );
        let q = QueryRange::new(0, 100);
        for (sel, proj) in [("a", "b"), ("a", "c"), ("b", "c"), ("c", "a")] {
            s.select_project(sel, q, proj);
        }
        assert_eq!(s.evictions(), 0);
        assert_eq!(s.resident_maps(), 4);
    }
}
