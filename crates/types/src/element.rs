//! The element types a cracked column can store.

/// A fixed-width value stored in a dense column array.
///
/// Database cracking physically reorders the column, so anything that must
/// stay attached to a key (such as a rowid used for tuple reconstruction in
/// a column-store) has to move together with it. Algorithms in this
/// workspace are generic over `Element` and only ever order elements by
/// [`Element::key`].
///
/// Two implementations are provided:
///
/// * `u64` — a bare key, matching the integer arrays used throughout the
///   paper's evaluation;
/// * [`Tuple`] — a key plus a 32-bit rowid, the layout a column-store needs
///   when other attributes must be fetched after the select.
///
/// Elements are `Send + Sync` so columns can be cracked shard-parallel
/// and shared across query threads; any `Copy + 'static` value type
/// satisfies this automatically.
pub trait Element: Copy + Send + Sync + std::fmt::Debug + 'static {
    /// The ordering key cracking partitions by.
    fn key(&self) -> u64;

    /// Builds an element from a key, used by data generators and tests.
    /// For [`Tuple`] the rowid is set to the generator-provided position.
    fn from_key_row(key: u64, row: u32) -> Self;
}

impl Element for u64 {
    #[inline(always)]
    fn key(&self) -> u64 {
        *self
    }

    #[inline(always)]
    fn from_key_row(key: u64, _row: u32) -> Self {
        key
    }
}

/// A key with an attached rowid, for cracking with tuple reconstruction.
///
/// The rowid refers to the position of the tuple in the table's insertion
/// order; after a cracked select, qualifying rowids are used to fetch the
/// other attributes positionally (see `scrack-columnstore`'s `Table`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// The attribute value the column is cracked on.
    pub key: u64,
    /// Position of the tuple in table insertion order.
    pub row: u32,
}

impl Tuple {
    /// Creates a new key/rowid pair.
    #[inline]
    pub fn new(key: u64, row: u32) -> Self {
        Self { key, row }
    }
}

impl Element for Tuple {
    #[inline(always)]
    fn key(&self) -> u64 {
        self.key
    }

    #[inline(always)]
    fn from_key_row(key: u64, row: u32) -> Self {
        Self { key, row }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_key_roundtrip() {
        let e = u64::from_key_row(42, 7);
        assert_eq!(e, 42);
        assert_eq!(e.key(), 42);
    }

    #[test]
    fn tuple_carries_row() {
        let t = Tuple::from_key_row(42, 7);
        assert_eq!(t.key(), 42);
        assert_eq!(t.row, 7);
        assert_eq!(t, Tuple::new(42, 7));
    }

    #[test]
    fn tuple_is_16_bytes_or_less() {
        // The layout matters: cracking moves elements with memcpy-style
        // swaps, so the element must stay small.
        assert!(std::mem::size_of::<Tuple>() <= 16);
    }
}
