//! Cache-size configuration driving cracking thresholds.

/// CPU cache sizes used to derive cracking thresholds.
///
/// The paper ties two knobs to the cache hierarchy:
///
/// * `CRACK_SIZE`, the piece size below which DDC/DDR stop introducing
///   auxiliary cracks — "we found that the size of L1 cache as piece size
///   threshold provides the best overall performance" (§4, Fig. 8 sweeps
///   L1/4 … 3·L2);
/// * the progressive-cracking cutoff — "progressive cracking occurs only as
///   long as the targeted data piece is bigger than the L2 cache" (§4).
///
/// Sizes are configurable because the reproduction may run on machines with
/// different caches; defaults match a typical x86 core (32 KiB L1d,
/// 256 KiB L2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheProfile {
    /// L1 data-cache size in bytes.
    pub l1_bytes: usize,
    /// L2 cache size in bytes.
    pub l2_bytes: usize,
}

impl Default for CacheProfile {
    fn default() -> Self {
        Self {
            l1_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
        }
    }
}

impl CacheProfile {
    /// A profile with explicit sizes.
    pub fn new(l1_bytes: usize, l2_bytes: usize) -> Self {
        Self { l1_bytes, l2_bytes }
    }

    /// How many elements of size `elem_size` fit in L1.
    #[inline]
    pub fn l1_elems(&self, elem_size: usize) -> usize {
        (self.l1_bytes / elem_size.max(1)).max(1)
    }

    /// How many elements of size `elem_size` fit in L2.
    #[inline]
    pub fn l2_elems(&self, elem_size: usize) -> usize {
        (self.l2_bytes / elem_size.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_sane() {
        let c = CacheProfile::default();
        assert_eq!(c.l1_elems(8), 4096);
        assert_eq!(c.l2_elems(8), 32768);
        assert!(c.l1_bytes < c.l2_bytes);
    }

    #[test]
    fn zero_sized_elements_do_not_panic() {
        let c = CacheProfile::default();
        assert!(c.l1_elems(0) >= 1);
    }

    #[test]
    fn tiny_cache_still_reports_at_least_one_element() {
        let c = CacheProfile::new(4, 8);
        assert_eq!(c.l1_elems(8), 1);
        assert_eq!(c.l2_elems(16), 1);
    }
}
