//! Half-open range predicates, the select-operator argument.

/// A half-open key range `[low, high)`.
///
/// The paper's queries appear in several syntactic forms (`a < A < b`,
/// `a <= A <= b`, …); internally everything is normalized to a half-open
/// interval over `u64` keys, which composes cleanly with crack boundaries
/// (a crack at value `v` separates keys `< v` from keys `>= v`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryRange {
    /// Inclusive lower bound.
    pub low: u64,
    /// Exclusive upper bound.
    pub high: u64,
}

impl QueryRange {
    /// Creates `[low, high)`. Ranges with `low >= high` are valid and empty.
    #[inline]
    pub fn new(low: u64, high: u64) -> Self {
        Self { low, high }
    }

    /// Normalizes the paper's `low < A < high` (both exclusive) form.
    #[inline]
    pub fn open_open(low: u64, high: u64) -> Self {
        Self::new(low.saturating_add(1), high)
    }

    /// Normalizes the paper's `low < A <= high` form.
    #[inline]
    pub fn open_closed(low: u64, high: u64) -> Self {
        Self::new(low.saturating_add(1), high.saturating_add(1))
    }

    /// Normalizes the `low <= A <= high` (both inclusive) form.
    #[inline]
    pub fn closed_closed(low: u64, high: u64) -> Self {
        Self::new(low, high.saturating_add(1))
    }

    /// Whether the range selects no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.low >= self.high
    }

    /// Number of distinct keys the range covers.
    #[inline]
    pub fn width(&self) -> u64 {
        self.high.saturating_sub(self.low)
    }

    /// Whether `key` qualifies. Written with a short-circuiting `&&`, as in
    /// the paper's discussion of the `Scan` baseline (§3).
    #[inline(always)]
    pub fn contains(&self, key: u64) -> bool {
        self.low <= key && key < self.high
    }

    /// The intersection of two ranges (possibly empty).
    #[inline]
    pub fn intersect(&self, other: &QueryRange) -> QueryRange {
        QueryRange::new(self.low.max(other.low), self.high.min(other.high))
    }
}

impl std::fmt::Display for QueryRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.low, self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_half_open() {
        let q = QueryRange::new(10, 20);
        assert!(!q.contains(9));
        assert!(q.contains(10));
        assert!(q.contains(19));
        assert!(!q.contains(20));
    }

    #[test]
    fn normalized_forms() {
        assert_eq!(QueryRange::open_open(10, 14), QueryRange::new(11, 14));
        assert_eq!(QueryRange::open_closed(7, 16), QueryRange::new(8, 17));
        assert_eq!(QueryRange::closed_closed(7, 16), QueryRange::new(7, 17));
    }

    #[test]
    fn empty_and_width() {
        assert!(QueryRange::new(5, 5).is_empty());
        assert!(QueryRange::new(6, 5).is_empty());
        assert_eq!(QueryRange::new(6, 5).width(), 0);
        assert_eq!(QueryRange::new(5, 9).width(), 4);
    }

    #[test]
    fn intersection() {
        let a = QueryRange::new(0, 10);
        let b = QueryRange::new(5, 15);
        assert_eq!(a.intersect(&b), QueryRange::new(5, 10));
        let c = QueryRange::new(12, 15);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn open_open_saturates_at_max() {
        let q = QueryRange::open_open(u64::MAX, u64::MAX);
        assert!(q.is_empty());
    }
}
