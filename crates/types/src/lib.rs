//! Shared foundation types for the stochastic cracking workspace.
//!
//! This crate holds the small vocabulary shared by every layer of the
//! reproduction of *Stochastic Database Cracking* (Halim et al., VLDB 2012):
//!
//! * [`Element`] — the unit stored in a column: either a bare key or a
//!   key+rowid pair, so physical reorganization can move rowids along with
//!   keys when tuple reconstruction is needed.
//! * [`QueryRange`] — a half-open `[low, high)` range predicate over `u64`
//!   keys, the select-operator argument every cracking algorithm consumes.
//! * [`Stats`] — the cost counters the paper's evaluation is built on
//!   (tuples touched, swaps, comparisons, cracks, materialized tuples).
//! * [`CacheProfile`] — configurable L1/L2 sizes driving the paper's
//!   `CRACK_SIZE` (Fig. 8) and progressive-cracking thresholds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod element;
mod range;
mod stats;

pub use cache::CacheProfile;
pub use element::{Element, Tuple};
pub use range::QueryRange;
pub use stats::Stats;
