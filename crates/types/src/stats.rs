//! Cost counters underlying the paper's evaluation.

/// Physical-cost counters maintained by every reorganization primitive and
/// engine.
///
/// The paper's analysis (§3) identifies *the amount of data the system has
/// to touch per query* as the dominant cracking cost; Fig. 2(e) plots
/// exactly that. All counters are plain `u64`s updated inline, cheap enough
/// to leave permanently enabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Tuples inspected during physical reorganization or scanning.
    pub touched: u64,
    /// Element swaps performed (the unit progressive cracking budgets).
    pub swaps: u64,
    /// Key comparisons performed.
    pub comparisons: u64,
    /// Cracks (index entries) added.
    pub cracks: u64,
    /// Tuples copied into materialized results.
    pub materialized: u64,
    /// Queries answered.
    pub queries: u64,
}

impl Stats {
    /// A zeroed counter set.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets all counters to zero.
    #[inline]
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// The difference `self - earlier`, for per-query deltas.
    ///
    /// Counters are monotone, so a later snapshot minus an earlier one is
    /// always well-defined; debug builds assert the ordering.
    #[inline]
    pub fn since(&self, earlier: &Stats) -> Stats {
        debug_assert!(self.touched >= earlier.touched);
        Stats {
            touched: self.touched - earlier.touched,
            swaps: self.swaps - earlier.swaps,
            comparisons: self.comparisons - earlier.comparisons,
            cracks: self.cracks - earlier.cracks,
            materialized: self.materialized - earlier.materialized,
            queries: self.queries - earlier.queries,
        }
    }
}

impl std::ops::AddAssign for Stats {
    fn add_assign(&mut self, rhs: Self) {
        self.touched += rhs.touched;
        self.swaps += rhs.swaps;
        self.comparisons += rhs.comparisons;
        self.cracks += rhs.cracks;
        self.materialized += rhs.materialized;
        self.queries += rhs.queries;
    }
}

impl std::ops::Add for Stats {
    type Output = Stats;
    fn add(mut self, rhs: Self) -> Stats {
        self += rhs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_between_snapshots() {
        let mut s = Stats::new();
        s.touched = 100;
        s.swaps = 10;
        let snap = s;
        s.touched = 150;
        s.swaps = 12;
        s.queries = 1;
        let d = s.since(&snap);
        assert_eq!(d.touched, 50);
        assert_eq!(d.swaps, 2);
        assert_eq!(d.queries, 1);
    }

    #[test]
    fn add_accumulates() {
        let a = Stats {
            touched: 1,
            swaps: 2,
            comparisons: 3,
            cracks: 4,
            materialized: 5,
            queries: 6,
        };
        let b = a + a;
        assert_eq!(b.touched, 2);
        assert_eq!(b.queries, 12);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = Stats {
            touched: 9,
            ..Stats::new()
        };
        s.reset();
        assert_eq!(s, Stats::new());
    }
}
