//! Integration tests: conjunctive queries over mixed-engine tables match
//! a naive row-filter oracle on arbitrary data and predicate streams.

use proptest::prelude::*;
use scrack_chooser::{ChooserEngine, PolicyKind};
use scrack_core::{CrackConfig, EngineKind};
use scrack_query::{tuples_from, CrackedTable, Predicate, RowIdSet};
use scrack_types::QueryRange;

/// Naive oracle: filter rows over the base columns directly.
fn oracle(cols: &[(&str, &[u64])], preds: &[Predicate]) -> Vec<u32> {
    let n = cols[0].1.len();
    (0..n as u32)
        .filter(|&r| {
            preds.iter().all(|p| {
                let (_, base) = cols
                    .iter()
                    .find(|(name, _)| *name == p.column)
                    .expect("oracle column");
                p.range.contains(base[r as usize])
            })
        })
        .collect()
}

#[test]
fn mixed_engines_long_query_stream() {
    let n = 20_000u64;
    let a: Vec<u64> = (0..n).map(|i| (i * 2654435761) % n).collect();
    let b: Vec<u64> = (0..n).map(|i| (i * 40503) % 1000).collect();
    let c: Vec<u64> = (0..n).map(|i| i / 100).collect();

    let mut t = CrackedTable::new();
    t.add_column("a", a.clone(), EngineKind::Crack, 1);
    t.add_column("b", b.clone(), EngineKind::Mdd1r, 2);
    // Third column indexed by the §6 chooser, to prove foreign engines
    // slot in through the same trait.
    let chooser = ChooserEngine::from_kind(
        tuples_from(&c),
        CrackConfig::default(),
        3,
        PolicyKind::Ucb1,
    );
    t.add_column_with_engine("c", c.clone(), Box::new(chooser));

    let cols: Vec<(&str, &[u64])> = vec![("a", &a), ("b", &b), ("c", &c)];
    for i in 0..150u64 {
        let preds = vec![
            Predicate::range("a", (i * 131) % n, (i * 131) % n + 2000),
            Predicate::range("b", (i * 7) % 900, (i * 7) % 900 + 120),
            Predicate::range("c", i % 150, i % 150 + 30),
        ];
        let rows = t.query(&preds);
        let expect = oracle(&cols, &preds);
        assert_eq!(rows.as_slice(), expect.as_slice(), "query {i}");
    }
    assert!(t.stats().queries >= 450, "every predicate ran an engine select");
}

#[test]
fn projections_reconstruct_tuples_after_heavy_cracking() {
    let n = 10_000u64;
    let key: Vec<u64> = (0..n).map(|i| (i * 48271) % n).collect();
    let val: Vec<u64> = (0..n).map(|i| i * 10).collect();
    let mut t = CrackedTable::new();
    t.add_column("key", key.clone(), EngineKind::Mdd1r, 1);
    t.add_column("val", val.clone(), EngineKind::Crack, 2);
    for i in 0..100u64 {
        let lo = (i * 97) % (n - 500);
        let rows = t.query(&[Predicate::range("key", lo, lo + 311)]);
        // Every projected (key, val) pair must match the base pairing:
        // cracking must never detach a rowid from its values.
        let keys = t.project(&rows, "key");
        let vals = t.project(&rows, "val");
        for ((r, k), v) in rows.iter().zip(&keys).zip(&vals) {
            assert_eq!(*k, key[r as usize]);
            assert_eq!(*v, val[r as usize]);
            assert_eq!(*v, (r as u64) * 10);
        }
    }
}

#[test]
fn point_queries_via_eq() {
    let n = 5000u64;
    let dupes: Vec<u64> = (0..n).map(|i| i % 50).collect();
    let mut t = CrackedTable::new();
    t.add_column("d", dupes.clone(), EngineKind::Dd1r, 9);
    for v in 0..50u64 {
        let rows = t.query(&[Predicate::eq("d", v)]);
        assert_eq!(rows.len(), 100, "value {v}");
        assert!(rows.iter().all(|r| dupes[r as usize] == v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_tables_match_oracle(
        n in 1usize..400,
        col_seeds in prop::collection::vec(0u64..1000, 2..4),
        queries in prop::collection::vec(
            (0usize..3, 0u64..450, 0u64..450), 1..30),
        engine_pick in 0usize..3,
    ) {
        let engines = [EngineKind::Crack, EngineKind::Mdd1r, EngineKind::Dd1r];
        let names = ["x", "y", "z"];
        let mut bases: Vec<Vec<u64>> = Vec::new();
        let mut t = CrackedTable::new();
        for (ci, seed) in col_seeds.iter().enumerate() {
            let base: Vec<u64> = (0..n as u64).map(|i| (i * 73 + seed * 131) % 400).collect();
            t.add_column(
                names[ci],
                base.clone(),
                engines[(ci + engine_pick) % engines.len()],
                *seed,
            );
            bases.push(base);
        }
        let cols: Vec<(&str, &[u64])> = bases
            .iter()
            .enumerate()
            .map(|(ci, b)| (names[ci], b.as_slice()))
            .collect();
        for (ci, x, y) in queries {
            let ci = ci % cols.len();
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            let preds = vec![Predicate {
                column: names[ci].to_string(),
                range: QueryRange::new(lo, hi),
            }];
            let rows = t.query(&preds);
            let expect = oracle(&cols, &preds);
            prop_assert_eq!(rows.as_slice(), expect.as_slice());
        }
    }

    #[test]
    fn rowset_ops_model_check(
        a in prop::collection::vec(0u32..2000, 0..300),
        b in prop::collection::vec(0u32..2000, 0..300),
    ) {
        use std::collections::BTreeSet;
        let sa = RowIdSet::from_unsorted(a.clone());
        let sb = RowIdSet::from_unsorted(b.clone());
        let ma: BTreeSet<u32> = a.into_iter().collect();
        let mb: BTreeSet<u32> = b.into_iter().collect();
        let inter: Vec<u32> = ma.intersection(&mb).copied().collect();
        let uni: Vec<u32> = ma.union(&mb).copied().collect();
        let adaptive = sa.intersect(&sb);
        let merge = sa.intersect_merge(&sb);
        let bitmap = sa.intersect_bitmap(&sb);
        let union = sa.union(&sb);
        prop_assert_eq!(adaptive.as_slice(), inter.as_slice());
        prop_assert_eq!(merge.as_slice(), inter.as_slice());
        prop_assert_eq!(bitmap.as_slice(), inter.as_slice());
        prop_assert_eq!(union.as_slice(), uni.as_slice());
    }
}
