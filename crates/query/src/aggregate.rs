//! Aggregation over conjunctive queries, with select-pushdown.
//!
//! A column-store answers `SELECT agg(col) WHERE …` without building row
//! sets when it can: the paper's select operator already returns the
//! qualifying values as contiguous views, so aggregating *those* is a
//! fold over the cracked array — no rowid materialization, no projection.
//! This module provides that fast path (single predicate on the
//! aggregated column itself) and the general path (arbitrary conjunction,
//! rowid intersection, positional fetch) behind one call.

use crate::predicate::Predicate;
use crate::table::CrackedTable;

/// The result of one aggregate evaluation: all machine aggregates are
/// computed in a single pass, so callers pick what they need.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AggResult {
    /// Number of qualifying rows.
    pub count: u64,
    /// Wrapping sum of the aggregated column over qualifying rows.
    pub sum: u64,
    /// Minimum value, `None` when no row qualifies.
    pub min: Option<u64>,
    /// Maximum value, `None` when no row qualifies.
    pub max: Option<u64>,
}

impl AggResult {
    /// Mean value, `None` when no row qualifies.
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    #[inline]
    fn fold(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }
}

impl CrackedTable {
    /// Aggregates `column` over the rows satisfying `preds`.
    ///
    /// When the conjunction is a single predicate on `column` itself, the
    /// qualifying values are exactly what the cracking select returns, so
    /// the fold runs directly over the select's views and materialized
    /// fringe (and the query still cracks the column as a side effect —
    /// aggregation queries drive adaptation like any other).
    ///
    /// # Panics
    /// If `column` or a predicate column does not exist.
    pub fn aggregate(&mut self, preds: &[Predicate], column: &str) -> AggResult {
        let mut acc = AggResult::default();
        if let [single] = preds {
            if single.column == column {
                // Pushdown: the select's output *is* the aggregate input.
                self.select_values(single, |v| acc.fold(v));
                return acc;
            }
        }
        let rows = self.query(preds);
        for v in self.project(&rows, column) {
            acc.fold(v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_core::EngineKind;

    fn table() -> (CrackedTable, Vec<u64>, Vec<u64>) {
        let n = 5000u64;
        let a: Vec<u64> = (0..n).map(|i| (i * 2654435761) % n).collect();
        let b: Vec<u64> = (0..n).map(|i| i % 100).collect();
        let mut t = CrackedTable::new();
        t.add_column("a", a.clone(), EngineKind::Mdd1r, 1);
        t.add_column("b", b.clone(), EngineKind::Crack, 2);
        (t, a, b)
    }

    fn naive(values: impl Iterator<Item = u64>) -> AggResult {
        let mut acc = AggResult::default();
        for v in values {
            acc.fold(v);
        }
        acc
    }

    #[test]
    fn pushdown_path_matches_naive() {
        let (mut t, a, _) = table();
        for lo in [0u64, 100, 2500, 4990] {
            let p = Predicate::range("a", lo, lo + 500);
            let got = t.aggregate(std::slice::from_ref(&p), "a");
            let expect = naive(a.iter().copied().filter(|v| p.range.contains(*v)));
            assert_eq!(got, expect, "lo={lo}");
        }
    }

    #[test]
    fn general_path_matches_naive() {
        let (mut t, a, b) = table();
        let preds = [Predicate::range("a", 1000, 4000), Predicate::below("b", 50)];
        let got = t.aggregate(&preds, "b");
        let expect = naive(
            (0..a.len())
                .filter(|&r| (1000..4000).contains(&a[r]) && b[r] < 50)
                .map(|r| b[r]),
        );
        assert_eq!(got, expect);
        assert_eq!(got.avg(), expect.avg());
    }

    #[test]
    fn cross_column_single_predicate_uses_general_path() {
        // One predicate, but on a different column than the aggregate:
        // must take the rowid path and still be exact.
        let (mut t, a, b) = table();
        let p = Predicate::range("b", 10, 20);
        let got = t.aggregate(&[p], "a");
        let expect = naive(
            (0..a.len())
                .filter(|&r| (10..20).contains(&b[r]))
                .map(|r| a[r]),
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_result_has_no_extrema() {
        let (mut t, _, _) = table();
        let got = t.aggregate(&[Predicate::range("a", 90_000, 99_000)], "a");
        assert_eq!(got.count, 0);
        assert_eq!(got.min, None);
        assert_eq!(got.max, None);
        assert_eq!(got.avg(), None);
    }

    #[test]
    fn aggregation_cracks_the_column() {
        let (mut t, _, _) = table();
        let before = t.stats().cracks;
        for i in 0..10u64 {
            t.aggregate(&[Predicate::range("a", i * 400, i * 400 + 300)], "a");
        }
        assert!(t.stats().cracks > before, "pushdown still adapts");
    }

    #[test]
    fn empty_predicates_aggregate_everything() {
        let (mut t, a, _) = table();
        let got = t.aggregate(&[], "a");
        assert_eq!(got.count, a.len() as u64);
        assert_eq!(got.min, Some(0));
        assert_eq!(got.max, Some(4999));
    }
}
