//! Sets of qualifying rowids and their intersection.

/// A set of rowids, stored sorted and deduplicated.
///
/// Intersection picks its algorithm by density: a sorted merge is optimal
/// for sparse results; for a dense probe side, a bitmap over the smaller
/// set's range amortizes better. Both paths are exposed for the ablation
/// bench, and [`intersect`](RowIdSet::intersect) chooses automatically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RowIdSet {
    rows: Vec<u32>,
}

impl RowIdSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds from an arbitrary list (sorts and deduplicates).
    pub fn from_unsorted(mut rows: Vec<u32>) -> Self {
        rows.sort_unstable();
        rows.dedup();
        Self { rows }
    }

    /// Builds from a list the caller guarantees is sorted and unique.
    ///
    /// # Panics
    /// In debug builds, if the guarantee is violated.
    pub fn from_sorted(rows: Vec<u32>) -> Self {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
        Self { rows }
    }

    /// Number of rowids.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rowids, ascending.
    pub fn as_slice(&self) -> &[u32] {
        &self.rows
    }

    /// Iterates the rowids, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.rows.iter().copied()
    }

    /// Membership test (binary search).
    pub fn contains(&self, row: u32) -> bool {
        self.rows.binary_search(&row).is_ok()
    }

    /// Intersection, choosing merge or bitmap by density.
    pub fn intersect(&self, other: &RowIdSet) -> RowIdSet {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if small.is_empty() {
            return RowIdSet::empty();
        }
        // Bitmap pays one bit per element of the probe-side *range*; use
        // it when the large side is dense enough that merge's O(m+n) walk
        // loses to O(m) probes.
        let span = (large.rows.last().expect("non-empty") - large.rows[0]) as usize + 1;
        if large.len() * 8 >= span {
            small.intersect_bitmap(large)
        } else {
            small.intersect_merge(large)
        }
    }

    /// Sorted two-pointer merge intersection.
    pub fn intersect_merge(&self, other: &RowIdSet) -> RowIdSet {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (a, b) = (&self.rows, &other.rows);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        RowIdSet { rows: out }
    }

    /// Bitmap intersection: materializes `other` as a bitset over its
    /// value range, probes with `self`'s elements.
    pub fn intersect_bitmap(&self, other: &RowIdSet) -> RowIdSet {
        if other.is_empty() || self.is_empty() {
            return RowIdSet::empty();
        }
        let base = other.rows[0];
        let span = (other.rows.last().expect("non-empty") - base) as usize + 1;
        let mut bits = vec![0u64; span.div_ceil(64)];
        for &r in &other.rows {
            let off = (r - base) as usize;
            bits[off / 64] |= 1 << (off % 64);
        }
        let rows = self
            .rows
            .iter()
            .copied()
            .filter(|&r| {
                r >= base && {
                    let off = (r - base) as usize;
                    off < span && bits[off / 64] & (1 << (off % 64)) != 0
                }
            })
            .collect();
        RowIdSet { rows }
    }

    /// Union (sorted merge).
    pub fn union(&self, other: &RowIdSet) -> RowIdSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (a, b) = (&self.rows, &other.rows);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        RowIdSet { rows: out }
    }

    /// Intersects many sets, smallest first (the cheapest join order).
    pub fn intersect_all(mut sets: Vec<RowIdSet>) -> RowIdSet {
        if sets.is_empty() {
            return RowIdSet::empty();
        }
        sets.sort_by_key(RowIdSet::len);
        let mut acc = sets.remove(0);
        for s in &sets {
            if acc.is_empty() {
                break;
            }
            acc = acc.intersect(s);
        }
        acc
    }
}

impl FromIterator<u32> for RowIdSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> RowIdSet {
        RowIdSet::from_unsorted(v.to_vec())
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn merge_and_bitmap_agree() {
        let a = set(&[1, 4, 6, 9, 200, 201, 500]);
        let b = set(&[4, 9, 10, 199, 200, 500, 501]);
        let expect = set(&[4, 9, 200, 500]);
        assert_eq!(a.intersect_merge(&b), expect);
        assert_eq!(a.intersect_bitmap(&b), expect);
        assert_eq!(b.intersect_bitmap(&a), expect);
        assert_eq!(a.intersect(&b), expect);
    }

    #[test]
    fn empty_intersections() {
        let a = set(&[1, 2, 3]);
        let e = RowIdSet::empty();
        assert_eq!(a.intersect(&e), e);
        assert_eq!(e.intersect(&a), e);
        assert_eq!(a.intersect(&set(&[7, 8])), e);
    }

    #[test]
    fn union_merges() {
        let a = set(&[1, 3, 5]);
        let b = set(&[2, 3, 6]);
        assert_eq!(a.union(&b).as_slice(), &[1, 2, 3, 5, 6]);
        assert_eq!(RowIdSet::empty().union(&b), b);
    }

    #[test]
    fn intersect_all_orders_by_size() {
        let sets = vec![
            set(&(0..1000).collect::<Vec<u32>>()),
            set(&[5, 500, 999]),
            set(&(0..500).collect::<Vec<u32>>()),
        ];
        assert_eq!(RowIdSet::intersect_all(sets).as_slice(), &[5]);
        assert_eq!(RowIdSet::intersect_all(vec![]), RowIdSet::empty());
    }

    #[test]
    fn contains_binary_search() {
        let s = set(&[2, 4, 8]);
        assert!(s.contains(4));
        assert!(!s.contains(5));
    }

    #[test]
    fn bitmap_handles_probe_below_base() {
        let a = set(&[1, 2, 3]);
        let b = set(&[100, 101]);
        assert_eq!(a.intersect_bitmap(&b), RowIdSet::empty());
    }

    #[test]
    fn adaptive_choice_is_transparent() {
        // Dense large side → bitmap; sparse → merge. Either way equal.
        let dense = set(&(1000..3000).collect::<Vec<u32>>());
        let sparse = set(&(0..60000).step_by(997).collect::<Vec<u32>>());
        let probe = set(&[999, 1000, 1994, 2999, 3000, 59820]);
        assert_eq!(
            probe.intersect(&dense),
            probe.intersect_merge(&dense),
            "dense path"
        );
        assert_eq!(
            probe.intersect(&sparse),
            probe.intersect_merge(&sparse),
            "sparse path"
        );
    }
}
