//! Range predicates over named columns.

use scrack_types::QueryRange;

/// One conjunct: a half-open range condition on a named column.
#[derive(Clone, Debug, PartialEq)]
pub struct Predicate {
    /// The column the condition applies to.
    pub column: String,
    /// The qualifying key range `[low, high)`.
    pub range: QueryRange,
}

impl Predicate {
    /// `column ∈ [low, high)`.
    pub fn range(column: &str, low: u64, high: u64) -> Self {
        Self {
            column: column.to_string(),
            range: QueryRange::new(low, high),
        }
    }

    /// `column == value` (a width-1 range; keys are integers).
    pub fn eq(column: &str, value: u64) -> Self {
        Self::range(column, value, value + 1)
    }

    /// `column >= low` (unbounded above).
    pub fn at_least(column: &str, low: u64) -> Self {
        Self {
            column: column.to_string(),
            range: QueryRange::new(low, u64::MAX),
        }
    }

    /// `column < high` (unbounded below).
    pub fn below(column: &str, high: u64) -> Self {
        Self::range(column, 0, high)
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in {}", self.column, self.range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Predicate::eq("a", 5).range, QueryRange::new(5, 6));
        assert_eq!(Predicate::below("a", 9).range, QueryRange::new(0, 9));
        assert_eq!(
            Predicate::at_least("a", 3).range,
            QueryRange::new(3, u64::MAX)
        );
        assert!(Predicate::range("a", 1, 2).range.contains(1));
    }

    #[test]
    fn display() {
        let p = Predicate::range("age", 30, 40);
        assert_eq!(p.to_string(), "age in [30, 40)");
    }
}
