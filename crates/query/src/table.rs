//! The cracked table: rowid-aligned columns, each adaptively indexed.

use crate::predicate::Predicate;
use crate::rowset::RowIdSet;
use scrack_core::{build_engine, CrackConfig, Engine, EngineKind};
use scrack_types::{Stats, Tuple};

/// Builds the cracker-column representation of a base column: one
/// `Tuple { key, row }` per value, rowids in insertion order.
pub fn tuples_from(base: &[u64]) -> Vec<Tuple> {
    assert!(
        base.len() <= u32::MAX as usize,
        "rowids are u32; table too large"
    );
    base.iter()
        .enumerate()
        .map(|(row, &key)| Tuple::new(key, row as u32))
        .collect()
}

struct ColumnEntry {
    name: String,
    /// Values in insertion order: `base[row]` answers projections.
    base: Vec<u64>,
    /// The adaptively indexed copy the engine reorders.
    engine: Box<dyn Engine<Tuple>>,
}

/// A table of rowid-aligned columns, each cracked independently.
///
/// Every column carries its own [`Engine`] — mixing strategies is
/// deliberate: a column hammered by focused ranges wants stochastic
/// cracking while a uniformly probed one does fine with the original, and
/// §2's "only those tables, columns, and key ranges that are queried are
/// being optimized" applies per column here.
///
/// Conjunctive queries run each predicate through its column's engine
/// (cracking it as a side effect), collect qualifying rowids, and
/// intersect smallest-first.
#[derive(Default)]
pub struct CrackedTable {
    n_rows: Option<usize>,
    columns: Vec<ColumnEntry>,
}

impl std::fmt::Debug for CrackedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrackedTable")
            .field("n_rows", &self.n_rows)
            .field(
                "columns",
                &self.columns.iter().map(|c| &c.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl CrackedTable {
    /// An empty table; add columns before querying.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a column indexed by a standard engine kind.
    ///
    /// # Panics
    /// If the name is taken or the length differs from earlier columns.
    pub fn add_column(&mut self, name: &str, base: Vec<u64>, kind: EngineKind, seed: u64) {
        let engine = build_engine(kind, tuples_from(&base), CrackConfig::default(), seed);
        self.add_column_with_engine(name, base, engine);
    }

    /// Adds a column indexed by a caller-built engine (e.g. a
    /// `ChooserEngine` or a hybrid). The engine must have been built over
    /// [`tuples_from`]`(&base)` for projections to be consistent.
    ///
    /// # Panics
    /// If the name is taken or the length differs from earlier columns.
    pub fn add_column_with_engine(
        &mut self,
        name: &str,
        base: Vec<u64>,
        engine: Box<dyn Engine<Tuple>>,
    ) {
        assert!(
            self.columns.iter().all(|c| c.name != name),
            "column {name:?} already exists"
        );
        match self.n_rows {
            None => self.n_rows = Some(base.len()),
            Some(n) => assert_eq!(
                n,
                base.len(),
                "column {name:?} has {} rows, table has {n}",
                base.len()
            ),
        }
        self.columns.push(ColumnEntry {
            name: name.to_string(),
            base,
            engine,
        });
    }

    /// Number of rows (0 before the first column).
    pub fn n_rows(&self) -> usize {
        self.n_rows.unwrap_or(0)
    }

    /// The column names, in insertion order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    fn column_mut(&mut self, name: &str) -> &mut ColumnEntry {
        self.columns
            .iter_mut()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("no column named {name:?}"))
    }

    fn column(&self, name: &str) -> &ColumnEntry {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("no column named {name:?}"))
    }

    /// Answers one predicate through its column's engine, cracking the
    /// column as a side effect, and returns the qualifying rowids.
    pub fn select_rows(&mut self, pred: &Predicate) -> RowIdSet {
        let col = self.column_mut(&pred.column);
        let out = col.engine.select(pred.range);
        let data = col.engine.data();
        out.resolve(data).map(|t| t.row).collect()
    }

    /// Answers one predicate and folds `f` over the qualifying *values*
    /// without building a rowid set — the aggregation pushdown path.
    pub fn select_values(&mut self, pred: &Predicate, mut f: impl FnMut(u64)) {
        use scrack_types::Element as _;
        let col = self.column_mut(&pred.column);
        let out = col.engine.select(pred.range);
        for t in out.resolve(col.engine.data()) {
            f(t.key());
        }
    }

    /// Answers a conjunction of predicates: every predicate cracks its
    /// column, and the rowid sets are intersected smallest-first.
    ///
    /// An empty predicate list selects every row.
    pub fn query(&mut self, preds: &[Predicate]) -> RowIdSet {
        if preds.is_empty() {
            return (0..self.n_rows() as u32).collect();
        }
        let sets: Vec<RowIdSet> = preds.iter().map(|p| self.select_rows(p)).collect();
        RowIdSet::intersect_all(sets)
    }

    /// Answers a disjunction of predicates (`OR`): each predicate cracks
    /// its column, and the rowid sets are unioned.
    ///
    /// An empty predicate list selects no rows (the identity of `OR`).
    pub fn query_any(&mut self, preds: &[Predicate]) -> RowIdSet {
        preds
            .iter()
            .map(|p| self.select_rows(p))
            .fold(RowIdSet::empty(), |acc, s| acc.union(&s))
    }

    /// Disjunctive normal form: `OR` over groups, `AND` within a group —
    /// enough structure for the exploratory multi-range queries the
    /// paper's intro motivates (e.g. several sky regions at once).
    pub fn query_dnf(&mut self, groups: &[Vec<Predicate>]) -> RowIdSet {
        groups
            .iter()
            .map(|g| self.query(g))
            .fold(RowIdSet::empty(), |acc, s| acc.union(&s))
    }

    /// Fetches `column`'s values for the given rows, in rowid order — the
    /// positional tuple-reconstruction step of a column-store.
    pub fn project(&self, rows: &RowIdSet, column: &str) -> Vec<u64> {
        let col = self.column(column);
        rows.iter().map(|r| col.base[r as usize]).collect()
    }

    /// Convenience select-project: qualifying rows' values for several
    /// columns, column-major.
    pub fn query_project(&mut self, preds: &[Predicate], projections: &[&str]) -> Vec<Vec<u64>> {
        let rows = self.query(preds);
        projections
            .iter()
            .map(|name| self.project(&rows, name))
            .collect()
    }

    /// Aggregated physical-cost counters over all column engines.
    pub fn stats(&self) -> Stats {
        self.columns
            .iter()
            .fold(Stats::default(), |acc, c| acc + c.engine.stats())
    }

    /// Per-column counters, for reports.
    pub fn stats_per_column(&self) -> Vec<(String, Stats)> {
        self.columns
            .iter()
            .map(|c| (c.name.clone(), c.engine.stats()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CrackedTable {
        let n = 1000u64;
        let mut t = CrackedTable::new();
        t.add_column("a", (0..n).collect(), EngineKind::Crack, 1);
        t.add_column("b", (0..n).map(|i| (i * 37) % n).collect(), EngineKind::Mdd1r, 2);
        t.add_column("c", (0..n).map(|i| i % 10).collect(), EngineKind::Dd1r, 3);
        t
    }

    #[test]
    fn single_predicate_matches_filter() {
        let mut t = table();
        let rows = t.query(&[Predicate::range("a", 100, 200)]);
        assert_eq!(rows.len(), 100);
        assert_eq!(t.project(&rows, "a"), (100..200).collect::<Vec<u64>>());
    }

    #[test]
    fn conjunction_matches_naive_oracle() {
        let mut t = table();
        let preds = [
            Predicate::range("a", 0, 500),
            Predicate::range("b", 0, 500),
            Predicate::eq("c", 3),
        ];
        let rows = t.query(&preds);
        // Naive oracle over the base columns.
        let expect: Vec<u32> = (0..1000u32)
            .filter(|&r| {
                let a = r as u64;
                let b = (r as u64 * 37) % 1000;
                let c = r as u64 % 10;
                a < 500 && b < 500 && c == 3
            })
            .collect();
        assert_eq!(rows.as_slice(), expect.as_slice());
    }

    #[test]
    fn empty_predicates_select_all() {
        let mut t = table();
        assert_eq!(t.query(&[]).len(), 1000);
    }

    #[test]
    fn contradictory_conjunction_is_empty() {
        let mut t = table();
        let rows = t.query(&[
            Predicate::below("a", 100),
            Predicate::at_least("a", 500),
        ]);
        assert!(rows.is_empty());
    }

    #[test]
    fn repeated_queries_keep_cracking() {
        let mut t = table();
        let before = t.stats().cracks;
        for i in 0..20 {
            t.query(&[Predicate::range("a", i * 10, i * 10 + 50)]);
        }
        assert!(t.stats().cracks > before, "engines must accumulate cracks");
    }

    #[test]
    fn projection_order_is_rowid_order() {
        let mut t = table();
        let rows = t.query(&[Predicate::range("b", 0, 37)]);
        let projected = t.project(&rows, "a");
        let mut sorted = projected.clone();
        sorted.sort_unstable();
        assert_eq!(projected, sorted, "rowid order is ascending here");
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn unknown_column_panics() {
        let mut t = table();
        t.query(&[Predicate::eq("nope", 1)]);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_column_rejected() {
        let mut t = table();
        t.add_column("a", vec![1], EngineKind::Crack, 1);
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn mismatched_length_rejected() {
        let mut t = table();
        t.add_column("d", vec![1, 2, 3], EngineKind::Crack, 1);
    }

    #[test]
    fn disjunction_matches_naive_oracle() {
        let mut t = table();
        let rows = t.query_any(&[
            Predicate::below("a", 50),
            Predicate::at_least("a", 950),
            Predicate::eq("c", 7),
        ]);
        let expect: Vec<u32> = (0..1000u32)
            .filter(|&r| {
                let a = r as u64;
                let c = r as u64 % 10;
                !(50..950).contains(&a) || c == 7
            })
            .collect();
        assert_eq!(rows.as_slice(), expect.as_slice());
        assert!(t.query_any(&[]).is_empty(), "empty OR selects nothing");
    }

    #[test]
    fn dnf_combines_and_within_or_across() {
        let mut t = table();
        // (a < 100 AND c == 3) OR (a >= 900 AND c == 7)
        let rows = t.query_dnf(&[
            vec![Predicate::below("a", 100), Predicate::eq("c", 3)],
            vec![Predicate::at_least("a", 900), Predicate::eq("c", 7)],
        ]);
        let expect: Vec<u32> = (0..1000u32)
            .filter(|&r| {
                let a = r as u64;
                let c = r as u64 % 10;
                (a < 100 && c == 3) || (a >= 900 && c == 7)
            })
            .collect();
        assert_eq!(rows.as_slice(), expect.as_slice());
    }

    #[test]
    fn query_project_shapes() {
        let mut t = table();
        let cols = t.query_project(&[Predicate::range("a", 10, 20)], &["b", "c"]);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].len(), 10);
        assert_eq!(cols[1], (10..20).map(|i| i % 10).collect::<Vec<u64>>());
    }
}
