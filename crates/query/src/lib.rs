//! Multi-column conjunctive range queries over cracked columns.
//!
//! The paper applies cracking "at the attribute level; a query results in
//! reorganizing the referenced column(s), not the complete table" (§2),
//! with cross-column results assembled through rowids (the
//! tuple-reconstruction path of its reference \[18\]). This crate builds
//! that assembly: a [`CrackedTable`] holds rowid-aligned columns, each
//! cracked independently by its own adaptive engine, and answers
//! conjunctions of range predicates by intersecting the per-column
//! qualifying rowid sets.
//!
//! Each column keeps **two** representations, as a column-store does:
//!
//! * the *cracker column* — `Tuple { key, row }` pairs the engine
//!   physically reorders, one per select;
//! * the *base column* — values in insertion order, answering "fetch
//!   attribute of rowid r" projections in O(1).
//!
//! Intersection is adaptive ([`RowIdSet`]): sorted-merge for sparse
//! results, bitmap for dense ones.
//!
//! # Example
//!
//! ```
//! use scrack_query::{CrackedTable, Predicate};
//! use scrack_core::EngineKind;
//!
//! let mut table = CrackedTable::new();
//! table.add_column("age", (0..1000u64).map(|i| i % 90).collect(), EngineKind::Mdd1r, 1);
//! table.add_column("salary", (0..1000u64).map(|i| i * 7 % 10_000).collect(), EngineKind::Crack, 2);
//!
//! let rows = table.query(&[
//!     Predicate::range("age", 30, 40),
//!     Predicate::range("salary", 1000, 5000),
//! ]);
//! let salaries = table.project(&rows, "salary");
//! assert_eq!(salaries.len(), rows.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod predicate;
mod rowset;
mod table;

pub use aggregate::AggResult;
pub use predicate::Predicate;
pub use rowset::RowIdSet;
pub use table::{tuples_from, CrackedTable};
